// Per-component IO latency model.
//
// DiTing records latency across five components: compute node, frontend
// network, BlockServer, backend network, ChunkServer (§2.3). We model each
// component as a lognormal around a per-op base, with a heavy upper tail for
// occasional stragglers (GC pauses, network incast). The cache-location study
// (§7.3.2) composes these: a CN-cache hit skips everything past the compute
// node; a BS-cache hit skips the backend network and ChunkServer.

#ifndef SRC_TOPOLOGY_LATENCY_H_
#define SRC_TOPOLOGY_LATENCY_H_

#include <array>

#include "src/util/rng.h"

namespace ebs {

enum class OpType : uint8_t { kRead = 0, kWrite = 1 };
inline constexpr int kOpTypeCount = 2;
const char* OpTypeName(OpType op);

enum class StackComponent : uint8_t {
  kComputeNode = 0,
  kFrontendNetwork,
  kBlockServer,
  kBackendNetwork,
  kChunkServer,
};
inline constexpr int kStackComponentCount = 5;
const char* StackComponentName(StackComponent component);

// Per-IO latency split, all in microseconds.
struct LatencyBreakdown {
  std::array<double, kStackComponentCount> component_us = {};
  double Total() const;
  // End-to-end latency when the IO hits a cache at the given depth:
  // CN-cache -> only the compute-node slice (plus flash media time),
  // BS-cache -> CN + frontend + BS slices (plus flash media time).
  double TotalWithCnCacheHit(double flash_read_us) const;
  double TotalWithBsCacheHit(double flash_read_us) const;
};

// Retry/timeout accounting for IOs that hit a failed or slow component
// (src/fault). An IO gets `max_attempts` tries; each failed attempt burns its
// timeout plus an exponential backoff before the next try. Exhausting every
// attempt marks the IO timed out.
struct RetryPolicy {
  int max_attempts = 4;              // 1 initial try + 3 retries
  double attempt_timeout_us = 8000.0;   // how long a try waits on a dead target
  double backoff_base_us = 500.0;       // backoff before retry k: base * mult^(k-1)
  double backoff_multiplier = 2.0;
};

// Total latency cost of `failed_attempts` failed tries under `policy`:
// sum of the per-attempt timeout plus the exponential backoff run-up.
// failed_attempts is clamped to policy.max_attempts.
double RetryPenaltyUs(const RetryPolicy& policy, int failed_attempts);

// Degradation helpers used by the fault driver; both mutate the breakdown in
// place and are no-ops at the identity arguments (multiplier 1, 0 extra us).
void ApplyChunkServerSlowdown(LatencyBreakdown* breakdown, double multiplier);
void ApplyNetworkHiccup(LatencyBreakdown* breakdown, double extra_us_per_leg);

struct LatencyModelConfig {
  // Median component latencies in microseconds, reads.
  std::array<double, kStackComponentCount> read_base_us = {12.0, 28.0, 20.0, 24.0, 85.0};
  // Writes: ChunkServer persists three replicas -> fatter media slice.
  std::array<double, kStackComponentCount> write_base_us = {14.0, 30.0, 26.0, 28.0, 140.0};
  double jitter_sigma = 0.35;        // lognormal sigma around the base
  double straggler_probability = 0.01;
  double straggler_multiplier = 12.0;  // tail events stretch the component
  double flash_read_us = 18.0;         // persistent-cache media time
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyModelConfig config = {});

  // Samples a full five-component breakdown for one IO.
  LatencyBreakdown Sample(OpType op, Rng& rng) const;

  double flash_read_us() const { return config_.flash_read_us; }
  const LatencyModelConfig& config() const { return config_; }

 private:
  LatencyModelConfig config_;
};

}  // namespace ebs

#endif  // SRC_TOPOLOGY_LATENCY_H_
