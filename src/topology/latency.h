// Per-component IO latency model.
//
// DiTing records latency across five components: compute node, frontend
// network, BlockServer, backend network, ChunkServer (§2.3). We model each
// component as a lognormal around a per-op base, with a heavy upper tail for
// occasional stragglers (GC pauses, network incast). The cache-location study
// (§7.3.2) composes these: a CN-cache hit skips everything past the compute
// node; a BS-cache hit skips the backend network and ChunkServer.

#ifndef SRC_TOPOLOGY_LATENCY_H_
#define SRC_TOPOLOGY_LATENCY_H_

#include <array>

#include "src/util/rng.h"

namespace ebs {

enum class OpType : uint8_t { kRead = 0, kWrite = 1 };
inline constexpr int kOpTypeCount = 2;
const char* OpTypeName(OpType op);

enum class StackComponent : uint8_t {
  kComputeNode = 0,
  kFrontendNetwork,
  kBlockServer,
  kBackendNetwork,
  kChunkServer,
};
inline constexpr int kStackComponentCount = 5;
const char* StackComponentName(StackComponent component);

// Per-IO latency split, all in microseconds.
struct LatencyBreakdown {
  std::array<double, kStackComponentCount> component_us = {};
  double Total() const;
  // End-to-end latency when the IO hits a cache at the given depth:
  // CN-cache -> only the compute-node slice (plus flash media time),
  // BS-cache -> CN + frontend + BS slices (plus flash media time).
  double TotalWithCnCacheHit(double flash_read_us) const;
  double TotalWithBsCacheHit(double flash_read_us) const;
};

struct LatencyModelConfig {
  // Median component latencies in microseconds, reads.
  std::array<double, kStackComponentCount> read_base_us = {12.0, 28.0, 20.0, 24.0, 85.0};
  // Writes: ChunkServer persists three replicas -> fatter media slice.
  std::array<double, kStackComponentCount> write_base_us = {14.0, 30.0, 26.0, 28.0, 140.0};
  double jitter_sigma = 0.35;        // lognormal sigma around the base
  double straggler_probability = 0.01;
  double straggler_multiplier = 12.0;  // tail events stretch the component
  double flash_read_us = 18.0;         // persistent-cache media time
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyModelConfig config = {});

  // Samples a full five-component breakdown for one IO.
  LatencyBreakdown Sample(OpType op, Rng& rng) const;

  double flash_read_us() const { return config_.flash_read_us; }
  const LatencyModelConfig& config() const { return config_; }

 private:
  LatencyModelConfig config_;
};

}  // namespace ebs

#endif  // SRC_TOPOLOGY_LATENCY_H_
