// Strongly-typed entity identifiers for the EBS stack.
//
// The stack has many parallel index spaces (users, VMs, VDs, QPs, worker
// threads, segments, BlockServers, ...). A shared Id<Tag> template prevents
// accidentally indexing one table with another's id, at zero runtime cost.

#ifndef SRC_TOPOLOGY_IDS_H_
#define SRC_TOPOLOGY_IDS_H_

#include <cstdint>
#include <functional>
#include <limits>

namespace ebs {

template <typename Tag>
class Id {
 public:
  static constexpr uint32_t kInvalidValue = std::numeric_limits<uint32_t>::max();

  constexpr Id() = default;
  constexpr explicit Id(uint32_t value) : value_(value) {}

  constexpr uint32_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalidValue; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

 private:
  uint32_t value_ = kInvalidValue;
};

struct UserTag {};
struct VmTag {};
struct VdTag {};
struct QpTag {};
struct ComputeNodeTag {};
struct WorkerThreadTag {};
struct StorageClusterTag {};
struct StorageNodeTag {};
struct BlockServerTag {};
struct ChunkServerTag {};
struct SegmentTag {};

using UserId = Id<UserTag>;
using VmId = Id<VmTag>;
using VdId = Id<VdTag>;
using QpId = Id<QpTag>;
using ComputeNodeId = Id<ComputeNodeTag>;
using WorkerThreadId = Id<WorkerThreadTag>;
using StorageClusterId = Id<StorageClusterTag>;
using StorageNodeId = Id<StorageNodeTag>;
using BlockServerId = Id<BlockServerTag>;
using ChunkServerId = Id<ChunkServerTag>;
using SegmentId = Id<SegmentTag>;

}  // namespace ebs

template <typename Tag>
struct std::hash<ebs::Id<Tag>> {
  size_t operator()(ebs::Id<Tag> id) const noexcept {
    return std::hash<uint32_t>{}(id.value());
  }
};

#endif  // SRC_TOPOLOGY_IDS_H_
