// Fleet: the full materialized EBS deployment used by every simulation.
//
// FleetBuilder synthesizes a scaled-down but structurally faithful deployment:
// heavy-tailed users (median 1 VM, largest tenants owning a sizeable slice of
// the fleet), VMs packed onto compute nodes (some bare-metal), VDs sized from
// a subscription catalog, QPs bound to worker threads round-robin (the
// paper's single-WT hosting), and segments striped across BlockServers with
// the same-VD-different-BS placement constraint.

#ifndef SRC_TOPOLOGY_FLEET_H_
#define SRC_TOPOLOGY_FLEET_H_

#include <cstdint>
#include <vector>

#include "src/topology/entities.h"
#include "src/util/rng.h"

namespace ebs {

struct FleetConfig {
  uint64_t seed = 42;

  uint32_t user_count = 100;

  // Entity sizing (lognormal parameters of the count distributions).
  double vms_per_user_mu = 0.0;     // median e^mu = 1 VM per user
  double vms_per_user_sigma = 1.1;  // heavy tail: top tenants own many VMs
  uint32_t vms_per_user_max = 400;
  double vds_per_vm_mu = 0.7;  // median ~2 VDs per VM
  double vds_per_vm_sigma = 0.8;
  uint32_t vds_per_vm_max = 64;

  // Compute side.
  uint32_t max_vms_per_node = 8;
  double bare_metal_user_fraction = 0.10;
  int wts_per_node = 4;  // the paper analyses 4-WT nodes

  // Storage side.
  uint32_t storage_cluster_count = 4;
  uint32_t storage_nodes_per_cluster = 24;

  // Application mix over VMs. Order follows AppType. Defaults approximate the
  // Table 4/5 population (BigData VMs are fewer but much larger).
  std::vector<double> app_vm_weights = {0.10, 0.30, 0.18, 0.05, 0.22, 0.15};
};

struct Fleet {
  FleetConfig config;

  std::vector<VdSpec> spec_catalog;

  std::vector<User> users;
  std::vector<Vm> vms;
  std::vector<Vd> vds;
  std::vector<Qp> qps;
  std::vector<ComputeNode> nodes;
  std::vector<WorkerThread> wts;

  std::vector<StorageCluster> storage_clusters;
  std::vector<StorageNode> storage_nodes;
  std::vector<BlockServer> block_servers;
  std::vector<Segment> segments;

  // Segment covering byte `offset` of `vd`. offset must be < capacity.
  SegmentId SegmentForOffset(VdId vd, uint64_t offset) const;

  uint64_t TotalCapacityBytes() const;
};

// The default subscription catalog (scaled-down analogue of public EBS tiers).
std::vector<VdSpec> DefaultSpecCatalog();

// Builds a fleet; deterministic in config.seed.
Fleet BuildFleet(const FleetConfig& config);

// Failover / re-replication candidates for a segment: every other
// BlockServer of the segment's cluster, starting after the primary in
// ascending ring order. BSs already hosting a sibling segment of the same VD
// (the same-VD-different-BS placement constraint) are pushed to the back of
// the list — they are used only when every spread-preserving candidate is
// unavailable. Deterministic, depends only on fleet structure.
std::vector<BlockServerId> FailoverCandidates(const Fleet& fleet, SegmentId segment);

}  // namespace ebs

#endif  // SRC_TOPOLOGY_FLEET_H_
