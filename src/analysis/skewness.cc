#include "src/analysis/skewness.h"

#include <algorithm>

#include "src/util/stats.h"

namespace ebs {

std::vector<double> EntityTotals(std::span<const RwSeries> entities, OpType op) {
  std::vector<double> totals;
  totals.reserve(entities.size());
  for (const RwSeries& e : entities) {
    totals.push_back(e.Bytes(op).SumAll());
  }
  return totals;
}

std::vector<double> EntityP2a(std::span<const RwSeries> entities, OpType op) {
  std::vector<double> p2a;
  for (const RwSeries& e : entities) {
    const double value = e.Bytes(op).PeakToAverage();
    if (value > 0.0) {
      p2a.push_back(value);
    }
  }
  return p2a;
}

LevelSkewness ComputeLevelSkewness(std::span<const RwSeries> entities) {
  LevelSkewness out;
  for (const OpType op : {OpType::kRead, OpType::kWrite}) {
    const int i = static_cast<int>(op);
    const std::vector<double> totals = EntityTotals(entities, op);
    out.ccr1[i] = Ccr(totals, 0.01);
    out.ccr20[i] = Ccr(totals, 0.20);
    const std::vector<double> p2a = EntityP2a(entities, op);
    out.p2a50[i] = Percentile(p2a, 50.0);
  }
  return out;
}

std::vector<AppSkewness> ComputeAppSkewness(const Fleet& fleet,
                                            std::span<const RwSeries> vm_series) {
  std::vector<AppSkewness> out(kAppTypeCount);
  RwPair fleet_total = {};
  std::array<std::vector<double>, kAppTypeCount> read_totals;
  std::array<std::vector<double>, kAppTypeCount> write_totals;

  for (const Vm& vm : fleet.vms) {
    const RwSeries& series = vm_series[vm.id.value()];
    const double read = series.read_bytes.SumAll();
    const double write = series.write_bytes.SumAll();
    const int app = static_cast<int>(vm.app);
    read_totals[app].push_back(read);
    write_totals[app].push_back(write);
    fleet_total[0] += read;
    fleet_total[1] += write;
  }

  for (int app = 0; app < kAppTypeCount; ++app) {
    AppSkewness& row = out[app];
    row.app = static_cast<AppType>(app);
    row.ccr1 = {Ccr(read_totals[app], 0.01), Ccr(write_totals[app], 0.01)};
    row.ccr20 = {Ccr(read_totals[app], 0.20), Ccr(write_totals[app], 0.20)};
    const double app_read = Sum(read_totals[app]);
    const double app_write = Sum(write_totals[app]);
    row.traffic_share = {fleet_total[0] > 0.0 ? app_read / fleet_total[0] : 0.0,
                         fleet_total[1] > 0.0 ? app_write / fleet_total[1] : 0.0};
  }
  return out;
}

double WindowNormalizedCoV(std::span<const RwSeries> entities, OpType op, size_t begin,
                           size_t end) {
  std::vector<double> totals;
  totals.reserve(entities.size());
  for (const RwSeries& e : entities) {
    const TimeSeries& series = e.Bytes(op);
    double sum = 0.0;
    for (size_t t = begin; t < end && t < series.size(); ++t) {
      sum += series[t];
    }
    totals.push_back(sum);
  }
  return NormalizedCoV(totals);
}

double WriteToReadRatio(double write, double read) {
  const double total = write + read;
  if (total <= 0.0) {
    return 0.0;
  }
  return (write - read) / total;
}

}  // namespace ebs
