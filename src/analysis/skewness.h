// Measurement pipelines for the paper's baseline skewness statistics (§3).
//
// Spatial skewness: 1%- and 20%-CCR over per-entity traffic volumes.
// Temporal skewness: 50%ile of per-entity Peak-to-Average ratios, computed
// over entities with non-zero traffic (idle entities carry no P2A sample).

#ifndef SRC_ANALYSIS_SKEWNESS_H_
#define SRC_ANALYSIS_SKEWNESS_H_

#include <array>
#include <span>
#include <vector>

#include "src/topology/fleet.h"
#include "src/trace/records.h"

namespace ebs {

// Read ([0]) / write ([1]) statistic pair, matching the paper's "R / W" cells.
using RwPair = std::array<double, kOpTypeCount>;

struct LevelSkewness {
  RwPair ccr1 = {};    // 1%-CCR, fraction in [0,1]
  RwPair ccr20 = {};   // 20%-CCR
  RwPair p2a50 = {};   // 50%ile Peak-to-Average ratio
};

// Aggregated skewness for one aggregation level (one entity per RwSeries).
LevelSkewness ComputeLevelSkewness(std::span<const RwSeries> entities);

// Per-entity total bytes for one op.
std::vector<double> EntityTotals(std::span<const RwSeries> entities, OpType op);

// Per-entity P2A values for entities with non-zero traffic of `op`.
std::vector<double> EntityP2a(std::span<const RwSeries> entities, OpType op);

// Table 4 row: per-application-type skewness at the VM level.
struct AppSkewness {
  AppType app = AppType::kWebApp;
  RwPair ccr1 = {};
  RwPair ccr20 = {};
  RwPair traffic_share = {};  // share of the fleet total
};
std::vector<AppSkewness> ComputeAppSkewness(const Fleet& fleet,
                                            std::span<const RwSeries> vm_series);

// Normalized CoV of the per-entity traffic accumulated over window
// [begin, end) steps, for one op. Used by the WT/QP/VD CoV ladders (§4).
double WindowNormalizedCoV(std::span<const RwSeries> entities, OpType op, size_t begin,
                           size_t end);

// Normalized write-to-read ratio (Eq. 2): (W - R) / (W + R) in [-1, 1];
// returns 0 when both are 0.
double WriteToReadRatio(double write, double read);

}  // namespace ebs

#endif  // SRC_ANALYSIS_SKEWNESS_H_
