#include "src/analysis/latency.h"

#include <vector>

#include "src/util/stats.h"

namespace ebs {

ComponentLatencyStats AnalyzeComponentLatency(const TraceDataset& traces) {
  ComponentLatencyStats stats;
  std::array<std::vector<double>, kOpTypeCount> totals;
  std::array<std::array<RunningStats, kStackComponentCount>, kOpTypeCount> shares;

  for (const TraceRecord& r : traces.records) {
    const int op = static_cast<int>(r.op);
    const double total = r.latency.Total();
    if (total <= 0.0) {
      continue;
    }
    totals[op].push_back(total);
    for (int c = 0; c < kStackComponentCount; ++c) {
      shares[op][c].Add(r.latency.component_us[c] / total);
    }
  }

  for (int op = 0; op < kOpTypeCount; ++op) {
    stats.samples[op] = totals[op].size();
    stats.p50_us[op] = Percentile(totals[op], 50.0);
    stats.p99_us[op] = Percentile(totals[op], 99.0);
    for (int c = 0; c < kStackComponentCount; ++c) {
      stats.mean_share[op][c] = shares[op][c].mean();
    }
  }
  return stats;
}

}  // namespace ebs
