// Per-component latency accounting over the trace dataset — DiTing's "where
// does the time go" view across the five stack components (§2.3).

#ifndef SRC_ANALYSIS_LATENCY_H_
#define SRC_ANALYSIS_LATENCY_H_

#include <array>

#include "src/topology/latency.h"
#include "src/trace/records.h"

namespace ebs {

struct ComponentLatencyStats {
  // Mean share of end-to-end latency contributed by each component, per op.
  std::array<std::array<double, kStackComponentCount>, kOpTypeCount> mean_share = {};
  // Latency percentiles of the end-to-end path, per op (microseconds).
  std::array<double, kOpTypeCount> p50_us = {};
  std::array<double, kOpTypeCount> p99_us = {};
  std::array<uint64_t, kOpTypeCount> samples = {};
};

ComponentLatencyStats AnalyzeComponentLatency(const TraceDataset& traces);

}  // namespace ebs

#endif  // SRC_ANALYSIS_LATENCY_H_
