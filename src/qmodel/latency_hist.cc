#include "src/qmodel/latency_hist.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ebs {
namespace qmodel {

size_t LatencyHist::BucketOf(uint64_t value_us) {
  if (value_us < kSubBuckets) {
    return static_cast<size_t>(value_us);
  }
  int width = static_cast<int>(std::bit_width(value_us));  // value in [2^(width-1), 2^width)
  if (width > kMaxOctaveBits) {
    width = kMaxOctaveBits;
    value_us = (1ULL << kMaxOctaveBits) - 1;
  }
  const int shift = width - 1 - kSubBucketBits;  // >= 0 since width > kSubBucketBits
  const uint64_t sub = (value_us >> shift) & (kSubBuckets - 1);
  const size_t octave = static_cast<size_t>(width - kSubBucketBits);
  return octave * kSubBuckets + static_cast<size_t>(sub);
}

double LatencyHist::BucketLow(size_t bucket) {
  if (bucket < kSubBuckets) {
    return static_cast<double>(bucket);
  }
  const size_t octave = bucket / kSubBuckets;
  const uint64_t sub = bucket % kSubBuckets;
  const int shift = static_cast<int>(octave) - 1;
  return static_cast<double>(((kSubBuckets + sub) << shift));
}

double LatencyHist::BucketHigh(size_t bucket) {
  if (bucket < kSubBuckets) {
    return static_cast<double>(bucket + 1);
  }
  const size_t octave = bucket / kSubBuckets;
  const int shift = static_cast<int>(octave) - 1;
  return BucketLow(bucket) + static_cast<double>(1ULL << shift);
}

void LatencyHist::Record(double us) {
  if (us < 0.0) {
    us = 0.0;
  }
  const auto quantized = static_cast<uint64_t>(us);
  ++buckets_[BucketOf(quantized)];
  ++count_;
  sum_us_ += us;
  max_us_ = std::max(max_us_, us);
}

void LatencyHist::Accumulate(const LatencyHist& other) {
  for (size_t b = 0; b < kBucketCount; ++b) {
    buckets_[b] += other.buckets_[b];
  }
  count_ += other.count_;
  sum_us_ += other.sum_us_;
  max_us_ = std::max(max_us_, other.max_us_);
}

double LatencyHist::Percentile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_ - 1) + 1.0;  // 1-based
  double seen = 0.0;
  for (size_t b = 0; b < kBucketCount; ++b) {
    const double here = static_cast<double>(buckets_[b]);
    if (here == 0.0) {
      continue;
    }
    if (seen + here >= rank) {
      // Linear interpolation within [lo, hi): position of the rank among the
      // bucket's samples, capped by the true observed max.
      const double lo = BucketLow(b);
      const double hi = BucketHigh(b);
      const double frac = (rank - seen) / here;
      return std::min(lo + frac * (hi - lo), max_us_);
    }
    seen += here;
  }
  return max_us_;
}

uint64_t LatencyHist::Fingerprint() const {
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      h = (h ^ bytes[i]) * 1099511628211ULL;
    }
  };
  for (const uint64_t bucket : buckets_) {
    mix(&bucket, sizeof(bucket));
  }
  mix(&count_, sizeof(count_));
  mix(&sum_us_, sizeof(sum_us_));
  mix(&max_us_, sizeof(max_us_));
  return h;
}

}  // namespace qmodel
}  // namespace ebs
