#include "src/qmodel/queue_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace ebs {
namespace qmodel {

namespace {

// Microseconds of service bandwidth: bytes / (bytes_per_sec / 1e6).
double TransferUs(double size_bytes, double bytes_per_sec) {
  if (bytes_per_sec <= 0.0) {
    return 0.0;
  }
  return size_bytes * 1.0e6 / bytes_per_sec;
}

void MixBytes(uint64_t* h, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    *h = (*h ^ bytes[i]) * 1099511628211ULL;
  }
}

void MixU64(uint64_t* h, uint64_t value) { MixBytes(h, &value, sizeof(value)); }

void MixDouble(uint64_t* h, double value) { MixBytes(h, &value, sizeof(value)); }

}  // namespace

double QueueModelResult::MaxWtUtilization() const {
  double busiest = 0.0;
  for (const ServerLoadStat& stat : wt) {
    busiest = std::max(busiest, stat.busy_us);
  }
  return window_seconds > 0.0 ? busiest / (window_seconds * 1.0e6) : 0.0;
}

double QueueModelResult::MaxBsUtilization() const {
  double busiest = 0.0;
  for (const ServerLoadStat& stat : bs) {
    busiest = std::max(busiest, stat.busy_us);
  }
  return window_seconds > 0.0 ? busiest / (window_seconds * 1.0e6) : 0.0;
}

uint64_t QueueModelResult::Fingerprint() const {
  uint64_t h = 1469598103934665603ULL;
  MixU64(&h, events);
  MixDouble(&h, window_seconds);
  MixU64(&h, total_us.Fingerprint());
  MixU64(&h, read_us.Fingerprint());
  MixU64(&h, write_us.Fingerprint());
  for (const LatencyHist& hist : tenant_us) {
    MixU64(&h, hist.Fingerprint());
  }
  for (const VdLatencySummary& summary : vd) {
    MixU64(&h, summary.count);
    MixDouble(&h, summary.sum_us);
    MixDouble(&h, summary.max_us);
    MixU64(&h, summary.slo_violations);
  }
  for (const std::vector<ServerLoadStat>* tier : {&wt, &bs}) {
    for (const ServerLoadStat& stat : *tier) {
      MixDouble(&h, stat.busy_us);
      MixU64(&h, stat.served);
      MixU64(&h, stat.overflows);
      MixU64(&h, stat.max_depth);
    }
  }
  MixU64(&h, slo_violations_read);
  MixU64(&h, slo_violations_write);
  MixU64(&h, wt_overflows);
  MixU64(&h, bs_overflows);
  MixDouble(&h, queue_wait_sum_us);
  return h;
}

QueueSimulator::QueueSimulator(const Fleet& fleet, const QueueModelConfig& config,
                               double sampling_rate, double window_seconds)
    : fleet_(fleet),
      config_(config),
      upscale_(config.load_scale / (sampling_rate > 0.0 ? sampling_rate : 1.0)),
      window_us_(window_seconds * 1.0e6),
      obs_latency_(obs::MetricRegistry::Global().GetHistogram("qmodel.latency_us", "us")),
      obs_events_(obs::MetricRegistry::Global().GetCounter("qmodel.events")),
      obs_slo_violations_(obs::MetricRegistry::Global().GetCounter("qmodel.slo_violations")),
      obs_overflows_(obs::MetricRegistry::Global().GetCounter("qmodel.overflows")) {
  if (!config_.segment_bs_remap.empty() &&
      config_.segment_bs_remap.size() != fleet.segments.size()) {
    throw std::invalid_argument("qmodel: segment_bs_remap must cover every segment");
  }
  if (!config_.vd_admission_bytes_per_sec.empty() &&
      config_.vd_admission_bytes_per_sec.size() != fleet.vds.size()) {
    throw std::invalid_argument("qmodel: vd_admission_bytes_per_sec must cover every VD");
  }
  wt_.resize(fleet.wts.size());
  bs_.resize(fleet.block_servers.size());
  vd_admission_free_us_.assign(fleet.vds.size(), 0.0);
  result_.window_seconds = window_seconds;
  result_.tenant_us.resize(fleet.users.size());
  result_.vd.resize(fleet.vds.size());
  result_.wt.resize(fleet.wts.size());
  result_.bs.resize(fleet.block_servers.size());
}

uint64_t QueueSimulator::Depth(ServerState* server, double now_us) {
  while (!server->departures.empty() && server->departures.front() <= now_us) {
    server->departures.pop_front();
  }
  return server->departures.size();
}

uint32_t QueueSimulator::DispatchWt(const InFlight& io, double arrival_us) const {
  if (config_.dispatch == WtDispatch::kRecordBinding) {
    return io.wt;
  }
  // Least-loaded WT of the IO's compute node: earliest possible start wins,
  // lowest id breaks ties (both deterministic functions of simulated state).
  const ComputeNodeId node = fleet_.wts[io.wt].node;
  uint32_t best = io.wt;
  double best_start = std::numeric_limits<double>::infinity();
  for (const WorkerThreadId candidate : fleet_.nodes[node.value()].wts) {
    const ServerState& server = wt_[candidate.value()];
    const double next_free =
        server.departures.empty() ? arrival_us : server.departures.back();
    const double start = std::max(arrival_us, next_free);
    if (start < best_start || (start == best_start && candidate.value() < best)) {
      best = candidate.value();
      best_start = start;
    }
  }
  return best;
}

void QueueSimulator::Arrive(const TraceRecord& record, uint64_t sequence, bool cn_cache_hit) {
  const double submit_us = record.timestamp * 1.0e6;
  DrainUntil(submit_us);

  InFlight io;
  io.submit_us = submit_us;
  io.size_bytes = static_cast<double>(record.size_bytes);
  io.op = record.op;
  io.vd = record.vd.value();
  io.user = record.user.value();
  io.wt = record.wt.value();
  io.bs = record.bs.value();
  io.cn_cache_hit = cn_cache_hit;
  io.fault_timed_out = record.fault_timed_out;

  if (!config_.segment_bs_remap.empty()) {
    const uint32_t remap = config_.segment_bs_remap[record.segment.value()];
    if (remap != QueueModelConfig::kNoRemap) {
      io.bs = remap;
    }
  }

  const auto& lat = record.latency.component_us;
  io.frontend_us = lat[static_cast<int>(StackComponent::kFrontendNetwork)];
  // The fault driver folds the client-side retry/backoff wait into the
  // BlockServer slice; strip it back out of server occupancy (a dead-target
  // wait burns the client's budget, not the surviving server's time) and
  // charge it as pre-arrival delay instead.
  io.retry_wait_us =
      record.fault_retries > 0 ? RetryPenaltyUs(config_.retry, record.fault_retries) : 0.0;
  const double bs_slice =
      std::max(0.0, lat[static_cast<int>(StackComponent::kBlockServer)] - io.retry_wait_us);
  io.bs_basis_us = bs_slice + lat[static_cast<int>(StackComponent::kBackendNetwork)] +
                   lat[static_cast<int>(StackComponent::kChunkServer)];

  // Admission stage (throttle/lending what-if): a per-VD FIFO rate cap.
  // Per-VD arrivals are time-ordered in the canonical stream, so the running
  // next-free scalar is exact.
  double ready_us = submit_us;
  if (!config_.vd_admission_bytes_per_sec.empty()) {
    const double rate = config_.vd_admission_bytes_per_sec[io.vd];
    if (rate > 0.0) {
      const double start = std::max(submit_us, vd_admission_free_us_[io.vd]);
      vd_admission_free_us_[io.vd] = start + TransferUs(io.size_bytes, rate) * upscale_;
      ready_us = start;
    }
  }

  Event event;
  event.time_us = ready_us + lat[static_cast<int>(StackComponent::kComputeNode)];
  event.stage = Stage::kWtArrival;
  event.vd = io.vd;
  event.sequence = sequence;
  event.io = io;
  events_.push(event);
}

void QueueSimulator::DrainUntil(double time_us) {
  while (!events_.empty() && events_.top().time_us <= time_us) {
    const Event event = events_.top();
    events_.pop();
    if (event.stage == Stage::kWtArrival) {
      ProcessWtArrival(event);
    } else {
      ProcessBsArrival(event);
    }
  }
}

void QueueSimulator::ProcessWtArrival(const Event& event) {
  InFlight io = event.io;
  const double now = event.time_us;
  io.wt = DispatchWt(io, now);
  ServerState& server = wt_[io.wt];
  Depth(&server, now);

  const double next_free = server.departures.empty() ? now : server.departures.back();
  const double backlog = next_free - now;
  if (config_.wt.queue_capacity_us > 0.0 && backlog > config_.wt.queue_capacity_us) {
    ++server.stat.overflows;
    ++result_.wt_overflows;
    Complete(io, now + config_.overflow_penalty_us);
    return;
  }

  const double start = std::max(now, next_free);
  const double single_us = config_.wt.per_io_us + TransferUs(io.size_bytes, config_.wt.bytes_per_sec);
  const double occupancy_us = single_us * upscale_;
  server.departures.push_back(start + occupancy_us);
  server.stat.busy_us += occupancy_us;
  ++server.stat.served;
  server.stat.max_depth = std::max(server.stat.max_depth,
                                   static_cast<uint64_t>(server.departures.size()));
  result_.queue_wait_sum_us += start - now;

  // The sampled IO rides at the head of its upscaled batch: its own latency
  // advances by the single-IO service, the server stays busy for the batch.
  const double depart_us = start + single_us;
  if (io.cn_cache_hit) {
    Complete(io, depart_us + config_.flash_read_us);
    return;
  }
  Event next;
  next.time_us = depart_us + io.frontend_us + io.retry_wait_us;
  next.stage = Stage::kBsArrival;
  next.vd = io.vd;
  next.sequence = event.sequence;
  next.io = io;
  events_.push(next);
}

void QueueSimulator::ProcessBsArrival(const Event& event) {
  const InFlight& io = event.io;
  const double now = event.time_us;
  if (io.fault_timed_out) {
    // The IO exhausted its retry budget against dead targets; it never got
    // service, so it consumes no BS occupancy and completes at its budget.
    Complete(io, now + io.bs_basis_us);
    return;
  }
  ServerState& server = bs_[io.bs];
  Depth(&server, now);

  const double next_free = server.departures.empty() ? now : server.departures.back();
  const double backlog = next_free - now;
  if (config_.bs.queue_capacity_us > 0.0 && backlog > config_.bs.queue_capacity_us) {
    ++server.stat.overflows;
    ++result_.bs_overflows;
    Complete(io, now + config_.overflow_penalty_us);
    return;
  }

  // The BS queue server covers only the BS's own processing (per-IO cost +
  // byte transfer); the backend-network/chunk-server slices are an
  // infinite-server delay stage — they stretch the IO's latency but hold no
  // queue slot (media parallelism), so a fault-inflated CS slice storms the
  // tail directly while occupancy-driven storms come from failover load
  // concentration.
  const double start = std::max(now, next_free);
  const double single_us =
      config_.bs.per_io_us + TransferUs(io.size_bytes, config_.bs.bytes_per_sec);
  const double occupancy_us = single_us * upscale_;
  server.departures.push_back(start + occupancy_us);
  server.stat.busy_us += occupancy_us;
  ++server.stat.served;
  server.stat.max_depth = std::max(server.stat.max_depth,
                                   static_cast<uint64_t>(server.departures.size()));
  result_.queue_wait_sum_us += start - now;

  Complete(io, start + single_us + io.bs_basis_us);
}

void QueueSimulator::Complete(const InFlight& io, double completion_us) {
  const double total_us = std::max(0.0, completion_us - io.submit_us);
  ++result_.events;
  result_.total_us.Record(total_us);
  if (io.op == OpType::kRead) {
    result_.read_us.Record(total_us);
  } else {
    result_.write_us.Record(total_us);
  }
  result_.tenant_us[io.user].Record(total_us);

  VdLatencySummary& summary = result_.vd[io.vd];
  ++summary.count;
  summary.sum_us += total_us;
  summary.max_us = std::max(summary.max_us, total_us);
  const double slo_us = io.op == OpType::kRead ? config_.slo.read_us : config_.slo.write_us;
  if (total_us > slo_us) {
    ++summary.slo_violations;
    if (io.op == OpType::kRead) {
      ++result_.slo_violations_read;
    } else {
      ++result_.slo_violations_write;
    }
    obs_slo_violations_->Increment();
  }

  obs_events_->Increment();
  obs_latency_->Record(static_cast<uint64_t>(std::llround(total_us)));
}

QueueModelResult QueueSimulator::Finish() {
  if (finished_) {
    throw std::logic_error("qmodel: Finish called twice");
  }
  finished_ = true;
  DrainUntil(std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < wt_.size(); ++i) {
    result_.wt[i] = wt_[i].stat;
  }
  for (size_t i = 0; i < bs_.size(); ++i) {
    result_.bs[i] = bs_[i].stat;
  }
  obs_overflows_->Add(result_.wt_overflows + result_.bs_overflows);
  return std::move(result_);
}

QueueModelResult RunOverTraces(const Fleet& fleet, const QueueModelConfig& config,
                               const TraceDataset& traces, double window_seconds,
                               const std::vector<uint8_t>* cn_cache_hits) {
  if (cn_cache_hits != nullptr && cn_cache_hits->size() != traces.records.size()) {
    throw std::invalid_argument("qmodel: cn_cache_hits must cover every trace record");
  }
  // Canonicalize to the merged stream order. The batch generator sorts by
  // timestamp only; (timestamp, vd, offset) with a stable sort reproduces the
  // streaming engine's (timestamp, vd, sequence) order — the same
  // canonicalization the fault chaos tests fingerprint with.
  std::vector<uint32_t> order(traces.records.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const TraceRecord& ra = traces.records[a];
    const TraceRecord& rb = traces.records[b];
    if (ra.timestamp != rb.timestamp) {
      return ra.timestamp < rb.timestamp;
    }
    if (ra.vd.value() != rb.vd.value()) {
      return ra.vd.value() < rb.vd.value();
    }
    return ra.offset < rb.offset;
  });

  QueueSimulator simulator(fleet, config, traces.sampling_rate, window_seconds);
  std::vector<uint64_t> vd_sequence(fleet.vds.size(), 0);
  for (const uint32_t index : order) {
    const TraceRecord& record = traces.records[index];
    const bool hit = cn_cache_hits != nullptr && (*cn_cache_hits)[index] != 0;
    simulator.Arrive(record, vd_sequence[record.vd.value()]++, hit);
  }
  return simulator.Finish();
}

}  // namespace qmodel
}  // namespace ebs
