// Log-linear latency histogram for the discrete-event queueing backend.
//
// HDR-style layout: 8 sub-buckets per power-of-two octave, so relative
// resolution stays ~12.5% across the whole range (microseconds to hours)
// while the footprint stays a fixed few KiB. Percentile queries interpolate
// linearly within the landing bucket, which keeps P99/P999 readouts smooth
// enough to compare across runs (the coarse power-of-two-only readout was the
// known weakness of obs::ObsHistogram before its interpolation fix).
//
// Everything is plain integer state mutated single-threaded on the replay
// merge thread (or the batch caller) — deterministic, mergeable, and
// fingerprintable byte for byte.

#ifndef SRC_QMODEL_LATENCY_HIST_H_
#define SRC_QMODEL_LATENCY_HIST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ebs {
namespace qmodel {

class LatencyHist {
 public:
  // 3 sub-bucket bits -> 8 linear sub-buckets per octave.
  static constexpr int kSubBucketBits = 3;
  static constexpr uint64_t kSubBuckets = 1ULL << kSubBucketBits;
  // Values are microseconds; 2^50 us is ~35 years, far past any simulated
  // latency. Larger samples clamp into the last bucket.
  static constexpr int kMaxOctaveBits = 50;
  static constexpr size_t kBucketCount =
      kSubBuckets + static_cast<size_t>(kMaxOctaveBits - kSubBucketBits) * kSubBuckets;

  LatencyHist() : buckets_(kBucketCount, 0) {}

  // Records one latency sample (negative values clamp to 0).
  void Record(double us);
  // Adds another histogram's samples (bucket-wise).
  void Accumulate(const LatencyHist& other);

  uint64_t count() const { return count_; }
  double sum_us() const { return sum_us_; }
  double max_us() const { return max_us_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_us_ / static_cast<double>(count_); }

  // Quantile q in [0,1] with within-bucket linear interpolation, capped by
  // the observed maximum. Empty histogram -> 0.
  double Percentile(double q) const;

  // FNV-1a over the bucket counts and scalar tallies: equal fingerprints mean
  // identical recorded multisets (at bucket resolution) in identical amounts.
  uint64_t Fingerprint() const;

  const std::vector<uint64_t>& buckets() const { return buckets_; }

  // Bucket boundaries of bucket index b: samples land in [BucketLow(b),
  // BucketHigh(b)). Exposed for the interpolation unit tests.
  static double BucketLow(size_t bucket);
  static double BucketHigh(size_t bucket);
  static size_t BucketOf(uint64_t value_us);

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_us_ = 0.0;
  double max_us_ = 0.0;
};

}  // namespace qmodel
}  // namespace ebs

#endif  // SRC_QMODEL_LATENCY_HIST_H_
