// Discrete-event queueing backend: tail latency under skew.
//
// The additive component latency model (src/topology/latency.h) makes an IO's
// latency independent of every other IO, so the repo could reproduce the
// paper's *traffic* skew but not its *latency* consequences. This subsystem
// is the opt-in second mode: per-WT and per-BS FIFO service queues with
// configurable service rates and capacity, driven by a deterministic
// discrete-event loop over the sampled IO stream, producing per-VD and
// per-tenant latency distributions (P50/P99/P999) and SLO-violation counters.
//
// Request lifecycle (one sampled IO):
//
//   submit --[admission (optional per-VD rate cap)]--> compute-node slice
//     --> WT queue (FIFO, capacity, service = per-IO cost + bytes/rate)
//     --> frontend network slice (+ fault retry/failover wait, if any)
//     --> BS queue (FIFO, capacity, service = per-IO cost + bytes/rate)
//     --> backend delay stage (additive BS+backend+CS slices; infinite-server)
//     --> complete
//
// The BS queue covers the block server's own processing; the media path
// behind it (backend network + chunk servers) is modeled as an
// infinite-server delay — it stretches latency but holds no queue slot, so a
// fault-inflated chunk-server slice storms the tail directly while queueing
// storms come from load concentration (skew, failover).
//
// Sampling upscale: the trace stream is thinned at `sampling_rate`, so each
// sampled IO stands for 1/sampling_rate real ones. A server's clock advances
// by the *batch* occupancy (single-IO service x upscale) while the sampled
// IO's own latency only includes its single-IO service — queueing delay then
// reflects full-scale utilization without inflating per-IO service time.
//
// Determinism: the model consumes the canonical merged stream order
// (timestamp, vd, sequence) and breaks every event-time tie with
// (time, stage, vd, sequence). No wall clock, no RNG, no threads anywhere in
// the loop (tools/ebs_lint enforces this for src/qmodel specifically), so for
// a fixed input stream the result is bit-identical — batch, streaming at any
// worker count, and store replay all fingerprint the same.

#ifndef SRC_QMODEL_QUEUE_MODEL_H_
#define SRC_QMODEL_QUEUE_MODEL_H_

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "src/obs/metrics.h"
#include "src/qmodel/latency_hist.h"
#include "src/topology/fleet.h"
#include "src/topology/latency.h"
#include "src/trace/records.h"

namespace ebs {
namespace qmodel {

// How IOs pick their worker thread.
enum class WtDispatch : uint8_t {
  kRecordBinding = 0,  // the record's QP->WT binding (production behavior)
  // Per-IO dispatch to the least-loaded WT of the same compute node (the §4.4
  // "hardware dispatch" what-if). Deterministic: earliest possible start
  // wins, lowest WT id breaks ties.
  kLeastLoadedInNode,
};

struct QueueServerConfig {
  double bytes_per_sec = 0.0;  // full-scale service bandwidth of one server
  double per_io_us = 0.0;      // fixed per-IO service cost (single IO)
  // Queue capacity as a backlog bound: an arrival that would wait longer than
  // this sheds instead — it completes at arrival + overflow_penalty_us
  // without consuming service, and counts as an overflow (+ SLO violation).
  // A time bound (not an IO count) stays meaningful under the sampling
  // upscale, where one sampled IO occupies the server for a whole batch.
  double queue_capacity_us = 0.0;
};

struct SloConfig {
  double read_us = 2000.0;
  double write_us = 4000.0;
};

struct QueueModelConfig {
  // Off by default: the fast additive model stays the default everywhere
  // (calibration tests never see the queueing backend).
  bool enabled = false;

  // Defaults calibrated so DcPreset-scale fleets run hot-but-stable: the
  // hottest WTs/BSs sit near saturation (that is where skew turns into tail
  // latency) while the fleet median stays comfortable.
  QueueServerConfig wt{.bytes_per_sec = 16.0e9, .per_io_us = 4.0, .queue_capacity_us = 20000.0};
  QueueServerConfig bs{.bytes_per_sec = 12.0e9, .per_io_us = 5.0, .queue_capacity_us = 50000.0};

  // Extra multiplier on the upscaled occupancy (what-if load scaling).
  double load_scale = 1.0;
  // Latency charged to an IO shed by a full queue. Kept above the queue
  // capacities so shedding never reads cheaper than the wait it displaced
  // (otherwise a lossy server would look like a tail-latency mitigation).
  double overflow_penalty_us = 25000.0;
  // Media time of a compute-node cache hit (mirrors LatencyModelConfig).
  double flash_read_us = 18.0;
  SloConfig slo;
  // Used to strip the client-side retry/backoff wait (which the fault driver
  // folded into the record's BlockServer slice) back out of BS *occupancy*:
  // a dead-target wait burns the client's time, not the surviving server's.
  RetryPolicy retry;
  WtDispatch dispatch = WtDispatch::kRecordBinding;

  // Optional what-ifs for mitigation studies (empty = disabled):
  // per-segment BS remap (index SegmentId -> BlockServerId value, kNoRemap to
  // keep the record's placement) — predicted segment migration;
  std::vector<uint32_t> segment_bs_remap;
  // per-VD admission rate cap in bytes/sec (<=0 entries uncapped) — throttle
  // / lending studies route their cap math through this.
  std::vector<double> vd_admission_bytes_per_sec;

  static constexpr uint32_t kNoRemap = 0xFFFFFFFFu;
};

struct ServerLoadStat {
  double busy_us = 0.0;       // upscaled occupancy accumulated
  uint64_t served = 0;        // sampled IOs that got service here
  uint64_t overflows = 0;     // sampled IOs shed by a full queue
  uint64_t max_depth = 0;     // peak IOs in system (full-scale estimate)
};

struct VdLatencySummary {
  uint64_t count = 0;
  double sum_us = 0.0;
  double max_us = 0.0;
  uint64_t slo_violations = 0;
};

struct QueueModelResult {
  uint64_t events = 0;
  double window_seconds = 0.0;

  LatencyHist total_us;  // all IOs
  LatencyHist read_us;
  LatencyHist write_us;
  std::vector<LatencyHist> tenant_us;    // by UserId
  std::vector<VdLatencySummary> vd;      // by VdId
  std::vector<ServerLoadStat> wt;        // by WorkerThreadId
  std::vector<ServerLoadStat> bs;        // by BlockServerId

  uint64_t slo_violations_read = 0;
  uint64_t slo_violations_write = 0;
  uint64_t wt_overflows = 0;
  uint64_t bs_overflows = 0;
  // Sum of pure waiting (queueing delay, both stages) across IOs.
  double queue_wait_sum_us = 0.0;

  // busy_us / window for the hottest server of each tier.
  double MaxWtUtilization() const;
  double MaxBsUtilization() const;
  uint64_t SloViolations() const { return slo_violations_read + slo_violations_write; }

  // FNV-1a over every histogram, summary and counter — two equal fingerprints
  // mean the whole latency product is bit-identical.
  uint64_t Fingerprint() const;
};

// The event-driven simulator. Feed IOs in the canonical merged-stream order
// (timestamp, vd, sequence) — the replay engine's sink order, or
// RunOverTraces' canonical sort for batch datasets — then call Finish().
class QueueSimulator {
 public:
  // `sampling_rate` is the trace thinning rate (WorkloadConfig::sampling_rate)
  // driving the occupancy upscale; `window_seconds` the observation window.
  QueueSimulator(const Fleet& fleet, const QueueModelConfig& config, double sampling_rate,
                 double window_seconds);

  // `sequence` is the per-VD emission index (ReplayEvent::sequence).
  // `cn_cache_hit` short-circuits the IO after the WT stage (compute-node
  // cache hit: flash media time instead of the whole storage path).
  void Arrive(const TraceRecord& record, uint64_t sequence, bool cn_cache_hit = false);

  // Drains every in-flight event and returns the final result. Call once.
  QueueModelResult Finish();

 private:
  enum class Stage : uint8_t { kWtArrival = 0, kBsArrival = 1 };

  struct InFlight {
    double submit_us = 0.0;        // original submission time
    double size_bytes = 0.0;
    OpType op = OpType::kRead;
    uint32_t vd = 0;
    uint32_t user = 0;
    uint32_t wt = 0;
    uint32_t bs = 0;
    double frontend_us = 0.0;      // frontend-network slice
    // Delay-stage basis: the record's BS+backend+CS slices (the additive
    // model's no-contention path cost), retry wait stripped. Charged to
    // latency after BS service, never to occupancy.
    double bs_basis_us = 0.0;
    double retry_wait_us = 0.0;    // client-side retry/backoff (latency only)
    bool cn_cache_hit = false;
    bool fault_timed_out = false;
  };

  struct Event {
    double time_us = 0.0;
    Stage stage = Stage::kWtArrival;
    uint32_t vd = 0;
    uint64_t sequence = 0;
    InFlight io;
  };
  // Min-heap order with the determinism tie-break (time, stage, vd, sequence).
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_us != b.time_us) {
        return a.time_us > b.time_us;
      }
      if (a.stage != b.stage) {
        return a.stage > b.stage;
      }
      if (a.vd != b.vd) {
        return a.vd > b.vd;
      }
      return a.sequence > b.sequence;
    }
  };

  struct ServerState {
    // Departure times of IO batches in system, ascending. back() is the
    // server's next-free time; entries with departure <= now have left.
    std::deque<double> departures;
    ServerLoadStat stat;
  };

  void DrainUntil(double time_us);
  void ProcessWtArrival(const Event& event);
  void ProcessBsArrival(const Event& event);
  void Complete(const InFlight& io, double completion_us);
  // Pops departed entries and returns the in-system count at `now_us`.
  static uint64_t Depth(ServerState* server, double now_us);
  uint32_t DispatchWt(const InFlight& io, double arrival_us) const;

  const Fleet& fleet_;
  QueueModelConfig config_;
  double upscale_;            // load_scale / sampling_rate
  double window_us_;

  std::vector<ServerState> wt_;
  std::vector<ServerState> bs_;
  std::vector<double> vd_admission_free_us_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  QueueModelResult result_;
  bool finished_ = false;

  // Mirrored into the global registry for RunReport export; no-ops while the
  // registry is disabled, and never feeds back into the model.
  obs::ObsHistogram* obs_latency_;
  obs::Counter* obs_events_;
  obs::Counter* obs_slo_violations_;
  obs::Counter* obs_overflows_;
};

// Batch entry point: canonically orders `traces` (timestamp, vd, offset — the
// stable sort that reproduces the merged stream order) and runs the simulator
// over it. `cn_cache_hits`, when non-null, flags cache-hit records by their
// index in traces.records (pre-sort order, as benches compute them).
QueueModelResult RunOverTraces(const Fleet& fleet, const QueueModelConfig& config,
                               const TraceDataset& traces, double window_seconds,
                               const std::vector<uint8_t>* cn_cache_hits = nullptr);

}  // namespace qmodel
}  // namespace ebs

#endif  // SRC_QMODEL_QUEUE_MODEL_H_
