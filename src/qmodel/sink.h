// Replay-engine adapter for the discrete-event queueing backend.
//
// QueueModelSink feeds every merged event into a QueueSimulator as the stream
// plays, on the merge thread — the engine's merged order (timestamp, vd,
// sequence) is exactly the canonical order the simulator requires, so the
// result is bit-identical to RunOverTraces on the batch dataset, at any
// worker count, live or from a trace store.

#ifndef SRC_QMODEL_SINK_H_
#define SRC_QMODEL_SINK_H_

#include <optional>

#include "src/qmodel/queue_model.h"
#include "src/replay/sink.h"

namespace ebs {
namespace qmodel {

class QueueModelSink : public ReplaySink {
 public:
  // `sampling_rate` is the workload's trace thinning rate (drives the
  // occupancy upscale).
  QueueModelSink(QueueModelConfig config, double sampling_rate)
      : config_(std::move(config)), sampling_rate_(sampling_rate) {}

  void OnStart(const Fleet& fleet, size_t window_steps, double step_seconds) override;
  void OnEvent(const ReplayEvent& event) override;
  void OnFinish() override;

  // Valid after OnFinish.
  const QueueModelResult& result() const;

 private:
  QueueModelConfig config_;
  double sampling_rate_;
  std::optional<QueueSimulator> simulator_;
  std::optional<QueueModelResult> result_;
};

}  // namespace qmodel
}  // namespace ebs

#endif  // SRC_QMODEL_SINK_H_
