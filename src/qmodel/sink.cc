#include "src/qmodel/sink.h"

#include <stdexcept>

namespace ebs {
namespace qmodel {

void QueueModelSink::OnStart(const Fleet& fleet, size_t window_steps, double step_seconds) {
  simulator_.emplace(fleet, config_, sampling_rate_,
                     static_cast<double>(window_steps) * step_seconds);
}

void QueueModelSink::OnEvent(const ReplayEvent& event) {
  simulator_->Arrive(event.record, event.sequence);
}

void QueueModelSink::OnFinish() { result_ = simulator_->Finish(); }

const QueueModelResult& QueueModelSink::result() const {
  if (!result_.has_value()) {
    throw std::logic_error("QueueModelSink: result accessed before OnFinish");
  }
  return *result_;
}

}  // namespace qmodel
}  // namespace ebs
