// Ablation — §4.4 hosting disciplines under multi-tenant contention.
//
// The paper argues per-IO dispatch balances workers but "requires additional
// mechanisms to ensure fairness". This bench quantifies the three-way
// trade-off on overloaded multi-tenant nodes:
//   inline polling   — fair to co-bound tenants, but strands capacity on
//                      idle workers;
//   greedy dispatch  — work-conserving, but the hottest tenant's backlog
//                      starves everyone (victim satisfaction collapses);
//   DRR dispatch     — work-conserving AND tenant-isolating.

#include <iostream>

#include "src/core/simulation.h"
#include "src/hypervisor/fairness.h"
#include "src/obs/report.h"
#include "src/util/table.h"

namespace {

using ebs::TablePrinter;

void Run() {
  ebs::EbsSimulation sim(ebs::DcPreset(1));

  ebs::PrintBanner(std::cout,
                   "Hosting disciplines on overloaded multi-tenant nodes (WT capacity sweep)");
  for (const double capacity_mbps : {10.0, 25.0, 50.0}) {
    TablePrinter table({"Discipline", "victim satisfaction", "Jain index", "utilization",
                        "overloaded node-steps"});
    for (const ebs::DispatchDiscipline discipline :
         {ebs::DispatchDiscipline::kInlinePolling, ebs::DispatchDiscipline::kGreedyDispatch,
          ebs::DispatchDiscipline::kDrrDispatch}) {
      ebs::FairnessConfig config;
      config.discipline = discipline;
      config.wt_capacity_bytes_per_step = capacity_mbps * 1e6;
      const auto result = ebs::EvaluateDispatchFairness(sim.fleet(), sim.metrics(), config);
      table.AddRow({ebs::DispatchDisciplineName(discipline),
                    TablePrinter::FmtPercent(result.victim_satisfaction),
                    TablePrinter::Fmt(result.jain_index, 3),
                    TablePrinter::FmtPercent(result.utilization),
                    std::to_string(result.overloaded_steps)});
    }
    std::cout << "\nWT capacity " << TablePrinter::Fmt(capacity_mbps, 0) << " MB/s/step:\n";
    table.Print(std::cout);
  }
  std::cout << "\nExpected: DRR keeps victims near 100% satisfied at full utilization;\n"
               "greedy utilizes fully but victims sink to the whale's completion rate;\n"
               "inline protects victims partially while stranding capacity (<100% util).\n";
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
