// Replay engine throughput: sharded generation + k-way merge at 1/2/4/8
// worker threads, with the full online pipeline attached (rollup aggregation
// + trace collection + a throughput probe).
//
// The merged stream and every dataset are bit-identical across rows (the
// determinism tests lock this in), so the only thing that varies with the
// thread count is wall-clock time. Speedup is reported against the 1-thread
// row; on a single-core host the parallel rows cannot beat it — the engine
// still runs the same sharded pipeline, the cores just are not there.

#include <chrono>
#include <iostream>
#include <thread>

#include "src/core/simulation.h"
#include "src/core/streaming.h"
#include "src/obs/report.h"
#include "src/util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  ebs::SimulationConfig config = ebs::DcPreset(1);

  ebs::PrintBanner(std::cout, "Replay engine: streaming generation throughput");
  std::cout << "fleet: " << config.fleet.user_count << " users, window "
            << config.workload.window_steps << " s, hardware threads: "
            << std::thread::hardware_concurrency() << "\n\n";

  ebs::TablePrinter table({"threads", "wall ms", "events", "events/s", "modeled IO/s",
                           "speedup vs 1T"});
  double baseline_ms = 0.0;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    const auto start = Clock::now();
    ebs::StreamingSimulation sim(config, {.worker_threads = threads, .queue_capacity = 8});
    sim.Run();
    const double ms = MillisSince(start);
    if (threads == 1) {
      baseline_ms = ms;
    }
    const double events = static_cast<double>(sim.stats().events);
    table.AddRow({std::to_string(threads), ebs::TablePrinter::Fmt(ms, 1),
                  std::to_string(sim.stats().events),
                  ebs::TablePrinter::Fmt(events / (ms / 1000.0), 0),
                  ebs::TablePrinter::Fmt(sim.stats().modeled_ios / (ms / 1000.0), 0),
                  ebs::TablePrinter::Fmt(baseline_ms / ms, 2)});
  }
  table.Print(std::cout);
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
