// Ablation — §5.3 alternatives to the joint hard cap.
//
// Compares throttled VD-seconds under (1) the production joint R+W cap,
// (2) a fleet-wide static read/write split, and (3) a per-VD profiled split
// (oracle workload knowledge). The paper's claim: splitting caps needs
// accurate profiling — a misprofiled split *creates* throttling that the
// joint cap would not (split-induced seconds).

#include <iostream>

#include "src/core/simulation.h"
#include "src/obs/report.h"
#include "src/throttle/throttle.h"
#include "src/util/table.h"

namespace {

using ebs::TablePrinter;

void Run() {
  ebs::EbsSimulation sim(ebs::DcPreset(1));
  const auto& offered = sim.workload().offered_vd;

  ebs::PrintBanner(std::cout, "Cap-splitting strategies (throttled VD-seconds, lower is "
                              "better)");
  TablePrinter table({"Strategy", "throttled VD-s", "split-induced VD-s"});
  const auto joint =
      ebs::EvaluateCapSplit(sim.fleet(), offered, ebs::CapSplitMode::kJoint);
  table.AddRow({"joint cap (production)", std::to_string(joint.throttled_vd_seconds), "-"});
  for (const double fraction : {0.2, 0.5}) {
    const auto split = ebs::EvaluateCapSplit(sim.fleet(), offered,
                                             ebs::CapSplitMode::kStaticSplit, fraction);
    table.AddRow({"static split (read " + TablePrinter::FmtPercent(fraction, 0) + ")",
                  std::to_string(split.throttled_vd_seconds),
                  std::to_string(split.split_induced_seconds)});
  }
  const auto profiled =
      ebs::EvaluateCapSplit(sim.fleet(), offered, ebs::CapSplitMode::kProfiledSplit);
  table.AddRow({"profiled split (oracle)", std::to_string(profiled.throttled_vd_seconds),
                std::to_string(profiled.split_induced_seconds)});
  table.Print(std::cout);

  std::cout << "\nExpected: static splits *add* split-induced throttling (one op class\n"
               "hits its slice while total demand fits the joint cap); the oracle-profiled\n"
               "split approaches the joint cap — which is why §5.3 moves on to lending\n"
               "instead of asking tenants for accurate profiles.\n";
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
