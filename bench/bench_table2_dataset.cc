// Table 2 — high-level summary of the collected datasets.
//
// Prints our scaled fleet's counterpart of each Table 2 row. Absolute counts
// are ~300x smaller than the paper's production fleet by design; the ratios
// (VM/user tails, write:read byte ratio, write:read trace ratio) are the
// comparable part.

#include <algorithm>
#include <iostream>

#include "src/core/simulation.h"
#include "src/obs/report.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using ebs::EbsSimulation;
using ebs::OpType;
using ebs::TablePrinter;

void Run() {
  EbsSimulation sim(ebs::DcPreset(1));
  const ebs::Fleet& fleet = sim.fleet();

  // Per-user VM / VD counts.
  std::vector<double> vms_per_user;
  std::vector<double> vds_per_user;
  for (const ebs::User& user : fleet.users) {
    vms_per_user.push_back(static_cast<double>(user.vms.size()));
    size_t vds = 0;
    for (const ebs::VmId vm : user.vms) {
      vds += fleet.vms[vm.value()].vds.size();
    }
    vds_per_user.push_back(static_cast<double>(vds));
  }
  std::sort(vms_per_user.begin(), vms_per_user.end());
  std::sort(vds_per_user.begin(), vds_per_user.end());

  const double write_bytes = sim.workload().TotalDeliveredBytes(OpType::kWrite);
  const double read_bytes = sim.workload().TotalDeliveredBytes(OpType::kRead);
  const uint64_t write_traces = sim.traces().CountOps(OpType::kWrite);
  const uint64_t read_traces = sim.traces().CountOps(OpType::kRead);

  ebs::PrintBanner(std::cout, "Table 2: dataset summary (scaled fleet; paper values for ratio "
                              "comparison)");
  TablePrinter table({"Statistic", "Ours", "Paper"});
  table.AddRow({"Users / VMs / VDs",
                std::to_string(fleet.users.size()) + " / " + std::to_string(fleet.vms.size()) +
                    " / " + std::to_string(fleet.vds.size()),
                "10k / 60k / 140k"});
  table.AddRow({"Median / max VMs per user",
                TablePrinter::Fmt(ebs::PercentileSorted(vms_per_user, 50.0), 0) + " / " +
                    TablePrinter::Fmt(vms_per_user.back(), 0),
                "1 / 9879"});
  table.AddRow({"Median / max VDs per user",
                TablePrinter::Fmt(ebs::PercentileSorted(vds_per_user, 50.0), 0) + " / " +
                    TablePrinter::Fmt(vds_per_user.back(), 0),
                "2 / 59225"});
  table.AddRow({"Write / read traffic (GB)",
                TablePrinter::Fmt(write_bytes / 1e9, 1) + " / " +
                    TablePrinter::Fmt(read_bytes / 1e9, 1),
                "21.7 PiB / 6.5 PiB"});
  table.AddRow({"Write:read byte ratio", TablePrinter::Fmt(write_bytes / read_bytes, 2),
                TablePrinter::Fmt(21.7 / 6.5, 2)});
  table.AddRow({"Write / read traces (k)",
                TablePrinter::Fmt(static_cast<double>(write_traces) / 1e3, 1) + " / " +
                    TablePrinter::Fmt(static_cast<double>(read_traces) / 1e3, 1),
                "247.1 M / 56.9 M"});
  table.AddRow({"Write:read trace ratio",
                TablePrinter::Fmt(static_cast<double>(write_traces) /
                                      static_cast<double>(std::max<uint64_t>(1, read_traces)),
                                  2),
                TablePrinter::Fmt(247.1 / 56.9, 2)});
  table.Print(std::cout);
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
