// Micro-benchmarks (google-benchmark) for the toolkit's hot paths: the
// distribution samplers, cache policies, fleet synthesis, predictor fits and
// the balancer step. These quantify the costs the paper's proposals trade
// against (e.g. per-IO dispatch overhead, predictor retraining cost).

#include <benchmark/benchmark.h>

#include "src/cache/policy.h"
#include "src/ml/arima.h"
#include "src/ml/gbt.h"
#include "src/topology/fleet.h"
#include "src/util/distributions.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/workload/generator.h"

namespace {

void BM_ZipfSample(benchmark::State& state) {
  ebs::Rng rng(1);
  const ebs::ZipfDistribution zipf(1ULL << 23, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_RngGaussian(benchmark::State& state) {
  ebs::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextGaussian());
  }
}
BENCHMARK(BM_RngGaussian);

void BM_CacheAccess(benchmark::State& state) {
  const auto policy = static_cast<ebs::CachePolicy>(state.range(0));
  auto cache = ebs::MakeCache(policy, 16384);
  ebs::Rng rng(7);
  const ebs::ZipfDistribution zipf(1 << 20, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache->Access(zipf.Sample(rng)));
  }
  state.SetLabel(ebs::CachePolicyName(policy));
}
BENCHMARK(BM_CacheAccess)
    ->Arg(static_cast<int>(ebs::CachePolicy::kFifo))
    ->Arg(static_cast<int>(ebs::CachePolicy::kLru))
    ->Arg(static_cast<int>(ebs::CachePolicy::kLfu))
    ->Arg(static_cast<int>(ebs::CachePolicy::kClock))
    ->Arg(static_cast<int>(ebs::CachePolicy::kTwoQ))
    ->Arg(static_cast<int>(ebs::CachePolicy::kFrozenHot));

void BM_FleetBuild(benchmark::State& state) {
  for (auto _ : state) {
    ebs::FleetConfig config;
    config.user_count = static_cast<uint32_t>(state.range(0));
    benchmark::DoNotOptimize(ebs::BuildFleet(config).vds.size());
  }
}
BENCHMARK(BM_FleetBuild)->Arg(20)->Arg(80);

void BM_WorkloadGenerate(benchmark::State& state) {
  ebs::FleetConfig fleet_config;
  fleet_config.user_count = 20;
  const ebs::Fleet fleet = ebs::BuildFleet(fleet_config);
  ebs::WorkloadConfig config;
  config.window_steps = 120;
  for (auto _ : state) {
    const ebs::WorkloadGenerator generator(fleet, config);
    benchmark::DoNotOptimize(generator.Generate().traces.records.size());
  }
}
BENCHMARK(BM_WorkloadGenerate)->Unit(benchmark::kMillisecond);

void BM_ArimaFit(benchmark::State& state) {
  ebs::Rng rng(11);
  std::vector<double> series(static_cast<size_t>(state.range(0)));
  double level = 10.0;
  for (double& v : series) {
    level = 0.9 * level + rng.NextGaussian();
    v = level;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebs::AutoFitArima(series, {}).aic);
  }
}
BENCHMARK(BM_ArimaFit)->Arg(60)->Arg(120)->Unit(benchmark::kMicrosecond);

void BM_GbtFit(benchmark::State& state) {
  ebs::Rng rng(13);
  const size_t rows = static_cast<size_t>(state.range(0));
  std::vector<std::vector<double>> x(rows, std::vector<double>(4));
  std::vector<double> y(rows);
  for (size_t r = 0; r < rows; ++r) {
    for (double& f : x[r]) {
      f = rng.NextGaussian();
    }
    y[r] = x[r][0] * 2.0 + x[r][3] + 0.1 * rng.NextGaussian();
  }
  ebs::GbtOptions options;
  options.trees = 40;
  for (auto _ : state) {
    ebs::GbtModel model;
    model.Fit(x, y, options);
    benchmark::DoNotOptimize(model.tree_count());
  }
}
BENCHMARK(BM_GbtFit)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_Percentile(benchmark::State& state) {
  ebs::Rng rng(3);
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (double& v : values) {
    v = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebs::Percentile(values, 99.0));
  }
}
BENCHMARK(BM_Percentile)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
