// Fault-injection overhead: what does carrying the fault layer cost?
//
// Three configurations over the same fleet and seed:
//   baseline    — empty schedule: the fault layer is skipped wholesale;
//   armed-idle  — a schedule whose events all have start == end: the driver
//                 is built and consulted per record, but no step is degraded;
//   crash-heavy — CrashHeavySchedule: staggered BS crashes, a CS brownout,
//                 a segment loss and a fleet-wide network hiccup.
//
// The contract is that armed-but-idle stays within ~2% of baseline (the per
// record cost is one step_active_ byte load), and the output of both is
// bit-identical — the chaos suite locks the identity in; this bench watches
// the cost. Each row is the best of `kReps` runs to shave scheduler noise.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>

#include "src/core/simulation.h"
#include "src/fault/schedule.h"
#include "src/obs/report.h"
#include "src/util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kReps = 5;

double BestRunMs(const ebs::SimulationConfig& config, ebs::FaultStats* stats_out) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = Clock::now();
    const ebs::EbsSimulation sim(config);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    best = std::min(best, ms);
    if (stats_out != nullptr) {
      *stats_out = sim.fault_stats();
    }
  }
  return best;
}

std::string Pct(double value, double baseline) {
  const double pct = (value - baseline) / baseline * 100.0;
  std::string out = pct >= 0 ? "+" : "";
  out += ebs::TablePrinter::Fmt(pct, 2);
  out += "%";
  return out;
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();

  ebs::SimulationConfig baseline_config = ebs::DcPreset(1);
  const ebs::Fleet fleet = ebs::BuildFleet(baseline_config.fleet);
  const size_t window = baseline_config.workload.window_steps;

  // Armed but idle: one zero-length event per fault type (minus unrecoverable)
  // so every driver table is allocated, yet no step is ever degraded.
  ebs::SimulationConfig idle_config = baseline_config;
  for (const ebs::FaultType type :
       {ebs::FaultType::kBlockServerCrash, ebs::FaultType::kChunkServerSlowdown,
        ebs::FaultType::kSegmentUnavailable, ebs::FaultType::kNetworkHiccup}) {
    ebs::FaultEvent event;
    event.type = type;
    event.target = type == ebs::FaultType::kNetworkHiccup ? ebs::kAllClusters : 0;
    event.start_step = window / 2;
    event.end_step = window / 2;
    idle_config.workload.faults.events.push_back(event);
  }

  ebs::SimulationConfig chaos_config = baseline_config;
  chaos_config.workload.faults = ebs::CrashHeavySchedule(fleet, window, /*seed=*/2024);

  ebs::PrintBanner(std::cout, "Fault layer: armed-but-idle overhead + degraded-run cost");
  std::cout << "fleet: " << baseline_config.fleet.user_count << " users, window " << window
            << " s, best of " << kReps << " runs per row (target: idle overhead < 2%)\n\n";

  const double baseline_ms = BestRunMs(baseline_config, nullptr);
  ebs::FaultStats idle_stats;
  const double idle_ms = BestRunMs(idle_config, &idle_stats);
  ebs::FaultStats chaos_stats;
  const double chaos_ms = BestRunMs(chaos_config, &chaos_stats);

  ebs::TablePrinter table(
      {"schedule", "wall ms", "vs baseline", "timed out", "retries", "failovers",
       "degraded steps"});
  table.AddRow({"baseline (empty)", ebs::TablePrinter::Fmt(baseline_ms, 1), "-", "0", "0",
                "0", "0"});
  table.AddRow({"armed idle", ebs::TablePrinter::Fmt(idle_ms, 1), Pct(idle_ms, baseline_ms),
                std::to_string(idle_stats.timed_out), std::to_string(idle_stats.retries),
                std::to_string(idle_stats.failovers),
                std::to_string(idle_stats.degraded_steps)});
  table.AddRow({"crash heavy", ebs::TablePrinter::Fmt(chaos_ms, 1),
                Pct(chaos_ms, baseline_ms), std::to_string(chaos_stats.timed_out),
                std::to_string(chaos_stats.retries), std::to_string(chaos_stats.failovers),
                std::to_string(chaos_stats.degraded_steps)});
  table.Print(std::cout);

  std::cout << "\narmed-idle IOs issued/completed: " << idle_stats.issued << "/"
            << idle_stats.completed << " (identity contract: all complete untouched)\n";

  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
