// Fig 5 — balanced write but skewed read (§6.2).
//
//  (a) per-cluster inter-BS CoV of read vs write traffic (read above the
//      diagonal for nearly every cluster);
//  (b) histogram of the per-cluster median |wr_ratio| of top-traffic segments
//      (segments are read- xor write-dominant);
//  (c) per-period CoV under Write-Only vs Write-then-Read migration on the
//      busiest cluster with the Ideal importer.

#include <algorithm>
#include <iostream>

#include "src/analysis/skewness.h"
#include "src/balancer/balancer.h"
#include "src/core/simulation.h"
#include "src/obs/report.h"
#include "src/util/histogram.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using ebs::OpType;
using ebs::TablePrinter;

void Run() {
  ebs::EbsSimulation sim(ebs::StorageStudyPreset());
  const ebs::Fleet& fleet = sim.fleet();
  const ebs::MetricDataset& metrics = sim.metrics();
  const auto& bs_series = sim.BsSeries();

  // --- Fig 5(a): read vs write CoV per cluster --------------------------------
  ebs::PrintBanner(std::cout, "Fig 5(a): inter-BS CoV, read vs write, per cluster");
  TablePrinter cov_table({"Cluster", "write CoV", "read CoV", "read > write"});
  size_t above = 0;
  for (const ebs::StorageCluster& cluster : fleet.storage_clusters) {
    std::vector<double> read_totals;
    std::vector<double> write_totals;
    for (const ebs::StorageNodeId node : cluster.nodes) {
      const ebs::BlockServerId server = fleet.storage_nodes[node.value()].block_server;
      read_totals.push_back(bs_series[server.value()].read_bytes.SumAll());
      write_totals.push_back(bs_series[server.value()].write_bytes.SumAll());
    }
    const double read_cov = ebs::NormalizedCoV(read_totals);
    const double write_cov = ebs::NormalizedCoV(write_totals);
    if (read_cov >= write_cov) {
      ++above;
    }
    cov_table.AddRow({"cluster-" + std::to_string(cluster.id.value()),
                      TablePrinter::Fmt(write_cov, 3), TablePrinter::Fmt(read_cov, 3),
                      read_cov >= write_cov ? "yes" : "no"});
  }
  cov_table.Print(std::cout);
  std::cout << "Clusters with read-CoV >= write-CoV: " << above << "/"
            << fleet.storage_clusters.size() << " (paper: 96.8% of clusters).\n";

  // --- Fig 5(b): |wr_ratio| of top-traffic segments ---------------------------
  ebs::PrintBanner(std::cout, "Fig 5(b): per-cluster 50%ile |wr_ratio| of top-80%-traffic "
                              "segments");
  std::vector<double> cluster_medians;
  for (const ebs::StorageCluster& cluster : fleet.storage_clusters) {
    // Collect (traffic, |wr_ratio|) for the cluster's active segments.
    std::vector<std::pair<double, double>> segments;  // (total bytes, |wr|)
    for (const auto& [seg_value, series_ptr] : metrics.segment_series.SortedItems()) {
      const ebs::RwSeries& series = *series_ptr;
      const ebs::Segment& segment = fleet.segments[seg_value];
      if (fleet.block_servers[segment.server.value()].cluster != cluster.id) {
        continue;
      }
      const double write = series.write_bytes.SumAll();
      const double read = series.read_bytes.SumAll();
      if (write + read <= 0.0) {
        continue;
      }
      segments.emplace_back(write + read, std::abs(ebs::WriteToReadRatio(write, read)));
    }
    std::sort(segments.begin(), segments.end(), std::greater<>());
    double total = 0.0;
    for (const auto& [traffic, wr] : segments) {
      total += traffic;
    }
    // Keep segments contributing the top 80% of traffic.
    std::vector<double> ratios;
    double cumulative = 0.0;
    for (const auto& [traffic, wr] : segments) {
      if (cumulative > 0.8 * total) {
        break;
      }
      cumulative += traffic;
      ratios.push_back(wr);
    }
    if (!ratios.empty()) {
      cluster_medians.push_back(ebs::Percentile(ratios, 50.0));
    }
  }
  size_t high = 0;
  for (const double median : cluster_medians) {
    if (median > 0.9) {
      ++high;
    }
  }
  std::cout << "Clusters with 50%ile |wr_ratio| > 0.9: " << high << "/"
            << cluster_medians.size() << " (paper: 85.2% — segments are read- or write-"
            << "dominant, so read and write migration do not interfere).\n";

  // --- Fig 5(c): Write-Only vs Write-then-Read migration ----------------------
  // As in §6.2.2: the cluster with the most frequent migrations under the
  // production balancer, Ideal importer.
  ebs::StorageClusterId busiest;
  double worst_thrash = -1.0;
  for (const ebs::StorageCluster& cluster : fleet.storage_clusters) {
    ebs::BalancerConfig probe;
    probe.policy = ebs::ImporterPolicy::kMinTraffic;
    ebs::InterBsBalancer balancer(fleet, metrics, cluster.id, probe);
    const auto result = balancer.Run();
    const double thrash = ebs::FrequentMigrationProportion(result.migrations, 1);
    if (thrash > worst_thrash) {
      worst_thrash = thrash;
      busiest = cluster.id;
    }
  }

  ebs::PrintBanner(std::cout, "Fig 5(c): per-period inter-BS CoV, Write-Only vs "
                              "Write-then-Read (Ideal importer)");
  TablePrinter mig_table({"Algorithm", "write CoV p50", "read CoV p50", "migrations"});
  for (const bool migrate_reads : {false, true}) {
    ebs::BalancerConfig config;
    config.policy = ebs::ImporterPolicy::kIdeal;
    config.migrate_reads = migrate_reads;
    ebs::InterBsBalancer balancer(fleet, metrics, busiest, config);
    const auto result = balancer.Run();
    mig_table.AddRow({migrate_reads ? "Write-then-Read" : "Write-Only",
                      TablePrinter::Fmt(ebs::Percentile(result.write_cov, 50), 3),
                      TablePrinter::Fmt(ebs::Percentile(result.read_cov, 50), 3),
                      std::to_string(result.migrations.size())});
  }
  mig_table.Print(std::cout);
  std::cout << "Paper: Write-then-Read sharply reduces read skew and, surprisingly, also "
               "slightly improves write balance.\n";
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
