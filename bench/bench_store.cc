// EBST trace store: encode/decode throughput, on-disk footprint vs the trace
// CSV, and replay-from-store vs regenerate wall clock.
//
// The size table is the acceptance gate of the format: at export precision
// (the CSV exporters' own fidelity) the store must be >= 4x smaller than the
// equivalent traces.csv; the exact (bit-identical) encoding lands near 1.6x —
// five full-entropy f64 latency components per record put a hard floor under
// it. The replay table shows the point of recording at all: re-driving the
// sink pipeline from disk skips generation entirely, and the stream it
// delivers is fingerprint-identical to the generating run.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>

#include "src/core/simulation.h"
#include "src/core/streaming.h"
#include "src/obs/report.h"
#include "src/trace/csv_export.h"
#include "src/trace/store.h"
#include "src/util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

uint64_t FileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return 0;
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  const bool stream_ok = std::ferror(file) == 0;
  const bool closed_ok = std::fclose(file) == 0;
  return (!stream_ok || !closed_ok || size < 0) ? 0 : static_cast<uint64_t>(size);
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  // The acceptance configuration: the default small fleet the store tests
  // use. The full DcPreset works too; this keeps the bench CI-fast.
  ebs::SimulationConfig config = ebs::DcPreset(1);
  config.fleet.user_count = 40;
  config.workload.window_steps = 120;

  ebs::PrintBanner(std::cout, "EBST trace store: size, codec throughput, replay-from-disk");
  std::cout << "fleet: " << config.fleet.user_count << " users, window "
            << config.workload.window_steps << " s\n\n";

  const auto generate_start = Clock::now();
  ebs::EbsSimulation sim(config);
  const double generate_ms = MillisSince(generate_start);
  const double records = static_cast<double>(sim.traces().records.size());
  const uint64_t fingerprint = ebs::AggregateFingerprint(sim.traces());

  const std::string dir = "/tmp";
  const std::string csv_path = dir + "/bench_store_traces.csv";
  ebs::WriteTracesCsv(sim.traces(), csv_path);
  const uint64_t csv_bytes = FileBytes(csv_path);
  const uint32_t window_steps = static_cast<uint32_t>(config.workload.window_steps);
  const double dt = config.workload.step_seconds;

  ebs::TablePrinter size_table(
      {"format", "bytes", "bytes/record", "vs CSV", "encode ms", "decode ms"});
  size_table.AddRow({"traces.csv", std::to_string(csv_bytes),
                     ebs::TablePrinter::Fmt(static_cast<double>(csv_bytes) / records, 1),
                     "1.00x", "-", "-"});

  for (const auto precision : {ebs::StorePrecision::kExport, ebs::StorePrecision::kExact}) {
    const bool exact = precision == ebs::StorePrecision::kExact;
    const std::string path = dir + (exact ? "/bench_store.exact.ebst" : "/bench_store.ebst");
    const auto encode_start = Clock::now();
    ebs::WriteDatasetToStore(path, sim.traces(), dt, window_steps,
                             {.precision = precision});
    const double encode_ms = MillisSince(encode_start);
    const auto decode_start = Clock::now();
    const ebs::TraceStoreReader reader(path);
    const ebs::TraceDataset decoded = reader.ReadAll();
    const double decode_ms = MillisSince(decode_start);
    const uint64_t bytes = reader.info().file_bytes;
    size_table.AddRow(
        {exact ? "ebst (exact)" : "ebst (export)", std::to_string(bytes),
         ebs::TablePrinter::Fmt(static_cast<double>(bytes) / records, 1),
         ebs::TablePrinter::Fmt(static_cast<double>(csv_bytes) / static_cast<double>(bytes),
                                2) +
             "x",
         ebs::TablePrinter::Fmt(encode_ms, 1), ebs::TablePrinter::Fmt(decode_ms, 1)});
    if (ebs::AggregateFingerprint(decoded) != fingerprint) {
      std::cerr << "FINGERPRINT MISMATCH after decode\n";
      return 1;
    }
  }
  size_table.Print(std::cout);

  // A replayable store adds the full-scale metrics section (per-QP and
  // per-segment series — a fixed-size product of the fleet, not the record
  // count); the fair CSV baseline for that file is all three exports.
  const std::string export_path = dir + "/bench_store.replay.ebst";
  ebs::WriteWorkloadToStore(export_path, sim.workload(), dt,
                            {.precision = ebs::StorePrecision::kExport});
  const std::string compute_csv = dir + "/bench_store_compute.csv";
  const std::string storage_csv = dir + "/bench_store_storage.csv";
  ebs::WriteComputeMetricsCsv(sim.fleet(), sim.metrics(), compute_csv);
  ebs::WriteStorageMetricsCsv(sim.fleet(), sim.metrics(), storage_csv);
  const uint64_t csv_total = csv_bytes + FileBytes(compute_csv) + FileBytes(storage_csv);
  const uint64_t replay_bytes = FileBytes(export_path);
  std::cout << "replayable store (traces + metrics section): " << replay_bytes
            << " B vs CSV trio " << csv_total << " B = "
            << ebs::TablePrinter::Fmt(
                   static_cast<double>(csv_total) / static_cast<double>(replay_bytes), 2)
            << "x smaller\n\n";

  ebs::TablePrinter replay_table({"pipeline", "wall ms", "events", "speedup"});
  const auto regen_start = Clock::now();
  ebs::StreamingSimulation regen(config, {.worker_threads = 1, .queue_capacity = 8});
  regen.Run();
  const double regen_ms = MillisSince(regen_start);
  replay_table.AddRow({"regenerate (1T)", ebs::TablePrinter::Fmt(regen_ms, 1),
                       std::to_string(regen.stats().events), "1.00x"});

  const auto replay_start = Clock::now();
  ebs::StreamingSimulation replay(export_path, config, {.queue_capacity = 8});
  replay.Run();
  const double replay_ms = MillisSince(replay_start);
  replay_table.AddRow({"replay from store", ebs::TablePrinter::Fmt(replay_ms, 1),
                       std::to_string(replay.stats().events),
                       ebs::TablePrinter::Fmt(regen_ms / replay_ms, 2) + "x"});
  replay_table.Print(std::cout);

  if (ebs::AggregateFingerprint(replay.traces()) != fingerprint) {
    std::cerr << "FINGERPRINT MISMATCH in replay-from-store\n";
    return 1;
  }
  std::cout << "\nfingerprint 0x" << std::hex << fingerprint << std::dec
            << " identical across generate, decode, and replay-from-store\n"
            << "(batch generation took " << ebs::TablePrinter::Fmt(generate_ms, 1)
            << " ms)\n";
  std::remove(csv_path.c_str());
  std::remove(compute_csv.c_str());
  std::remove(storage_csv.c_str());
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
