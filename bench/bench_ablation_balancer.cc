// Ablation — §6.1.3's prediction-driven balancer, end to end.
//
// The paper measures predictor MSE (Fig 4(c)) but stops short of closing the
// loop. This bench runs the balancer itself with forecast-based importer
// selection (S6 with ARIMA and GBT) against the production heuristic (S2)
// and the oracle (S5), reporting migration churn and achieved balance.

#include <iostream>

#include "src/balancer/balancer.h"
#include "src/core/simulation.h"
#include "src/ml/arima.h"
#include "src/ml/gbt.h"
#include "src/obs/report.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using ebs::TablePrinter;

struct Row {
  std::string name;
  ebs::BalancerConfig config;
};

void Run() {
  ebs::EbsSimulation sim(ebs::StorageStudyPreset());
  const ebs::Fleet& fleet = sim.fleet();

  std::vector<Row> rows;
  {
    Row r;
    r.name = "S2-MinTraffic (production)";
    r.config.policy = ebs::ImporterPolicy::kMinTraffic;
    rows.push_back(r);
  }
  {
    Row r;
    r.name = "S6-ARIMA forecast";
    r.config.policy = ebs::ImporterPolicy::kPredictive;
    r.config.predictor_factory = [] {
      ebs::ArimaOptions options;
      options.train_window = 60;
      return ebs::MakeArimaPredictor(options);
    };
    rows.push_back(r);
  }
  {
    Row r;
    r.name = "S6-GBT forecast";
    r.config.policy = ebs::ImporterPolicy::kPredictive;
    r.config.predictor_factory = [] {
      ebs::GbtOptions options;
      options.refit_every = 10;
      options.trees = 30;
      return ebs::MakeGbtPredictor(options);
    };
    rows.push_back(r);
  }
  {
    Row r;
    r.name = "S7-SegmentForecast (EWMA)";
    r.config.policy = ebs::ImporterPolicy::kSegmentForecast;
    rows.push_back(r);
  }
  {
    Row r;
    r.name = "S5-Ideal (oracle)";
    r.config.policy = ebs::ImporterPolicy::kIdeal;
    rows.push_back(r);
  }

  ebs::PrintBanner(std::cout, "Prediction-driven balancer, all clusters (15-step periods)");
  TablePrinter table({"Importer", "migrations", "interval p50", "mean write CoV"});
  for (Row& row : rows) {
    row.config.period_steps = 15;
    size_t migrations = 0;
    std::vector<double> intervals;
    ebs::RunningStats cov;
    for (const ebs::StorageCluster& cluster : fleet.storage_clusters) {
      ebs::InterBsBalancer balancer(fleet, sim.metrics(), cluster.id, row.config);
      const auto result = balancer.Run();
      migrations += result.migrations.size();
      const auto cluster_intervals =
          ebs::MigrationIntervals(result.migrations, result.periods);
      intervals.insert(intervals.end(), cluster_intervals.begin(), cluster_intervals.end());
      for (const double c : result.write_cov) {
        cov.Add(c);
      }
    }
    table.AddRow({row.name, std::to_string(migrations),
                  TablePrinter::Fmt(ebs::Percentile(intervals, 50.0), 3),
                  TablePrinter::Fmt(cov.mean(), 3)});
  }
  table.Print(std::cout);
  std::cout << "\nReading: the oracle (S5) shows the ceiling — fewest migrations, best\n"
               "balance. Naive per-BS forecasts (S6) actually *underperform* the current-\n"
               "period heuristic at short balancing periods, because forecast error on a\n"
               "bursty series misranks the coldest server more often than 'use the last\n"
               "period' does — exactly the deployment challenge the paper's 6.1.3 warns\n"
               "about. Segment-level forecasting (S7) composes per-segment EWMAs under\n"
               "the live assignment: it avoids S6's forecast-error penalty and matches\n"
               "the heuristic's balance; the remaining gap to the oracle is the\n"
               "irreducible burst unpredictability the paper highlights.\n";
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
