// Table 3 — baseline spatio-temporal skewness at CN / VM / SN / Segment level
// for three simulated data centers.
//
// Expected shape (paper): extreme CCR at VM and Segment level, mild at SN;
// read skew > write skew everywhere; P2A ordering VM >> Seg >> SN; read P2A
// >> write P2A. Absolute P2A is bounded by the window length (600 s here vs
// the paper's 43200 s), so compare P2A as a fraction of its maximum.

#include <iostream>

#include "src/analysis/skewness.h"
#include "src/core/simulation.h"
#include "src/obs/report.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using ebs::LevelSkewness;
using ebs::TablePrinter;

std::vector<std::string> Row(const std::string& level, const LevelSkewness& skew) {
  return {level, TablePrinter::FmtPair(skew.ccr1[0] * 100.0, skew.ccr1[1] * 100.0),
          TablePrinter::FmtPair(skew.ccr20[0] * 100.0, skew.ccr20[1] * 100.0),
          TablePrinter::FmtPair(skew.p2a50[0], skew.p2a50[1])};
}

void Run() {
  for (int dc = 1; dc <= 3; ++dc) {
    ebs::EbsSimulation sim(ebs::DcPreset(dc));
    ebs::PrintBanner(std::cout, "Table 3 (DC-" + std::to_string(dc) +
                                    "): 1%/20%-CCR (%) and 50%ile P2A, read / write");
    TablePrinter table({"Agg. level", "1%-CCR", "20%-CCR", "50%ile P2A"});
    table.AddRow(Row("CN", ebs::ComputeLevelSkewness(sim.CnSeries())));
    table.AddRow(Row("VM", ebs::ComputeLevelSkewness(sim.VmSeries())));
    table.AddRow(Row("SN", ebs::ComputeLevelSkewness(sim.SnSeries())));
    table.AddRow(Row("Seg", ebs::ComputeLevelSkewness(sim.SegSeries())));
    table.Print(std::cout);
  }

  std::cout << "\nPaper reference (DC-1): CN 14.3/8.7, VM 48.9/39.2, SN 2.4/1.8, "
               "Seg 40.0/26.7 (1%-CCR R/W);\n"
               "P2A 50%ile: VM 30649/1095, SN 6.6/2.5, Seg 97/30 over a 43200 s window.\n"
               "Shape checks: read CCR > write CCR; VM/Seg extreme vs SN mild; read P2A >> "
               "write P2A.\n";
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
