// Tail latency under skew — headline numbers of the discrete-event queueing
// backend (src/qmodel) and the regression baseline behind BENCH_LATENCY.json.
//
// Four scenarios over the DcPreset(1) window:
//   healthy              queueing defaults, no faults
//   load_x2              the same stream at 2x occupancy (skew amplification)
//   crash_heavy          CrashHeavySchedule fault storm (retries, failovers,
//                        chunk-server slowdowns)
//   dispatch_least_loaded the §4.4 hardware-dispatch what-if: per-IO dispatch
//                        to the least-loaded WT of the node
//
// Every scenario is a deterministic function of the seed, so the emitted JSON
// doubles as a regression baseline: scripts/check_bench.py compares a fresh
// run against the committed BENCH_LATENCY.json in CI.
//
// Usage: bench_latency [output.json]   (default BENCH_LATENCY.json)

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/simulation.h"
#include "src/fault/schedule.h"
#include "src/obs/report.h"
#include "src/util/table.h"

namespace {

using ebs::TablePrinter;

struct Scenario {
  std::string name;
  ebs::qmodel::QueueModelResult result;
};

ebs::qmodel::QueueModelResult RunScenario(bool crash_heavy, ebs::qmodel::WtDispatch dispatch,
                                          double load_scale) {
  ebs::SimulationConfig config = ebs::DcPreset(1);
  config.queueing.enabled = true;
  config.queueing.dispatch = dispatch;
  config.queueing.load_scale = load_scale;
  if (crash_heavy) {
    const ebs::Fleet fleet = ebs::BuildFleet(config.fleet);
    config.workload.faults = ebs::CrashHeavySchedule(fleet, config.workload.window_steps, 7);
    config.queueing.retry = config.workload.faults.retry;
  }
  const ebs::EbsSimulation sim(config);
  return *sim.queue_result();
}

std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void AppendScenarioJson(std::string* out, const Scenario& s) {
  const ebs::qmodel::QueueModelResult& r = s.result;
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016llx", static_cast<unsigned long long>(r.Fingerprint()));
  *out += "{\"name\":\"" + s.name + "\"";
  *out += ",\"events\":" + std::to_string(r.events);
  *out += ",\"p50_us\":" + Num(r.total_us.Percentile(0.50));
  *out += ",\"p90_us\":" + Num(r.total_us.Percentile(0.90));
  *out += ",\"p99_us\":" + Num(r.total_us.Percentile(0.99));
  *out += ",\"p999_us\":" + Num(r.total_us.Percentile(0.999));
  *out += ",\"max_us\":" + Num(r.total_us.max_us());
  *out += ",\"mean_us\":" + Num(r.total_us.Mean());
  *out += ",\"read_p99_us\":" + Num(r.read_us.Percentile(0.99));
  *out += ",\"write_p99_us\":" + Num(r.write_us.Percentile(0.99));
  *out += ",\"slo_violations\":" + std::to_string(r.SloViolations());
  *out += ",\"wt_overflows\":" + std::to_string(r.wt_overflows);
  *out += ",\"bs_overflows\":" + std::to_string(r.bs_overflows);
  *out += ",\"max_wt_utilization\":" + Num(r.MaxWtUtilization());
  *out += ",\"max_bs_utilization\":" + Num(r.MaxBsUtilization());
  *out += ",\"mean_queue_wait_us\":" +
          Num(r.events > 0 ? r.queue_wait_sum_us / static_cast<double>(r.events) : 0.0);
  *out += ",\"fingerprint\":\"";
  *out += fp;
  *out += "\"}";
}

bool WriteJson(const std::vector<Scenario>& scenarios, const std::string& path) {
  std::string json = "{\"bench\":\"latency\",\"scenarios\":[";
  for (size_t i = 0; i < scenarios.size(); ++i) {
    if (i > 0) {
      json += ",";
    }
    AppendScenarioJson(&json, scenarios[i]);
  }
  json += "]}\n";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = std::ferror(file) == 0;
  return (std::fclose(file) == 0) && ok;
}

int Run(const std::string& out_path) {
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      {"healthy", RunScenario(false, ebs::qmodel::WtDispatch::kRecordBinding, 1.0)});
  scenarios.push_back(
      {"load_x2", RunScenario(false, ebs::qmodel::WtDispatch::kRecordBinding, 2.0)});
  scenarios.push_back(
      {"crash_heavy", RunScenario(true, ebs::qmodel::WtDispatch::kRecordBinding, 1.0)});
  scenarios.push_back({"dispatch_least_loaded",
                       RunScenario(false, ebs::qmodel::WtDispatch::kLeastLoadedInNode, 1.0)});

  ebs::PrintBanner(std::cout, "Queueing backend: tail latency under skew (us)");
  TablePrinter table(
      {"scenario", "events", "p50", "p90", "p99", "p999", "max", "SLO viol", "overflow"});
  for (const Scenario& s : scenarios) {
    const ebs::qmodel::QueueModelResult& r = s.result;
    table.AddRow({s.name, std::to_string(r.events), TablePrinter::Fmt(r.total_us.Percentile(0.50), 0),
                  TablePrinter::Fmt(r.total_us.Percentile(0.90), 0),
                  TablePrinter::Fmt(r.total_us.Percentile(0.99), 0),
                  TablePrinter::Fmt(r.total_us.Percentile(0.999), 0),
                  TablePrinter::Fmt(r.total_us.max_us(), 0), std::to_string(r.SloViolations()),
                  std::to_string(r.wt_overflows + r.bs_overflows)});
  }
  table.Print(std::cout);

  const ebs::qmodel::QueueModelResult& base = scenarios[0].result;
  const ebs::qmodel::QueueModelResult& spread = scenarios[3].result;
  const double p99_base = base.total_us.Percentile(0.99);
  const double p99_spread = spread.total_us.Percentile(0.99);
  ebs::PrintBanner(std::cout, "Mitigation delta: per-IO least-loaded dispatch vs QP binding");
  TablePrinter delta({"metric", "record binding", "least loaded", "delta"});
  delta.AddRow({"P99 (us)", TablePrinter::Fmt(p99_base, 0), TablePrinter::Fmt(p99_spread, 0),
                TablePrinter::FmtPercent(p99_base > 0.0 ? (p99_spread - p99_base) / p99_base
                                                        : 0.0)});
  delta.AddRow({"P999 (us)", TablePrinter::Fmt(base.total_us.Percentile(0.999), 0),
                TablePrinter::Fmt(spread.total_us.Percentile(0.999), 0),
                TablePrinter::FmtPercent(
                    (spread.total_us.Percentile(0.999) - base.total_us.Percentile(0.999)) /
                    base.total_us.Percentile(0.999))});
  delta.AddRow({"SLO violations", std::to_string(base.SloViolations()),
                std::to_string(spread.SloViolations()),
                TablePrinter::FmtPercent(
                    base.SloViolations() > 0
                        ? (static_cast<double>(spread.SloViolations()) -
                           static_cast<double>(base.SloViolations())) /
                              static_cast<double>(base.SloViolations())
                        : 0.0)});
  delta.Print(std::cout);
  std::cout << "Expected: spreading a node's IOs across its WTs cuts the skew-driven tail "
               "(the paper's §4.4 hardware-dispatch motivation).\n";

  if (!WriteJson(scenarios, out_path)) {
    std::cout << "bench_latency: failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "bench_latency: wrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ebs::obs::InitRunReportFromEnv();
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_LATENCY.json";
  const int rc = Run(out_path);
  ebs::obs::EmitRunReport(std::cout);
  return rc;
}
