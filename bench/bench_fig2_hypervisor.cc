// Fig 2(a)-(c) + §4.2 — hypervisor load balancing under round-robin binding.
//
//  (a) WT-CoV of read/write traffic at several time scales (skew persists);
//  (b) the VM-VD-QP CoV ladder on each node's hottest VM;
//  (c) CDF of the hottest QP's traffic share per node;
//  plus the Type I/II/III node classification.

#include <iostream>

#include "src/core/simulation.h"
#include "src/hypervisor/wt_balance.h"
#include "src/obs/report.h"
#include "src/util/histogram.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using ebs::OpType;
using ebs::TablePrinter;

void Run() {
  ebs::EbsSimulation sim(ebs::DcPreset(1));
  const ebs::Fleet& fleet = sim.fleet();
  const ebs::MetricDataset& metrics = sim.metrics();

  // --- Fig 2(a): WT-CoV at multiple time scales -----------------------------
  ebs::PrintBanner(std::cout, "Fig 2(a): WT-CoV by time scale (median / p90 across node-"
                              "windows)");
  TablePrinter cov_table({"Scale", "read CoV p50", "read CoV p90", "write CoV p50",
                          "write CoV p90"});
  for (const size_t scale : {60UL, 300UL, 600UL}) {
    const auto read = ebs::WtCovSamples(fleet, metrics, OpType::kRead, scale);
    const auto write = ebs::WtCovSamples(fleet, metrics, OpType::kWrite, scale);
    cov_table.AddRow({std::to_string(scale) + "s", TablePrinter::Fmt(ebs::Percentile(read, 50), 2),
                      TablePrinter::Fmt(ebs::Percentile(read, 90), 2),
                      TablePrinter::Fmt(ebs::Percentile(write, 50), 2),
                      TablePrinter::Fmt(ebs::Percentile(write, 90), 2)});
  }
  cov_table.Print(std::cout);
  std::cout << "Paper: read/write WT-CoV medians ~0.7/0.5 at the 1-minute scale; read > "
               "write at every scale.\n";

  // --- Fig 2(b): CoV ladder --------------------------------------------------
  ebs::PrintBanner(std::cout, "Fig 2(b): CoV ladder on each node's hottest VM (median)");
  TablePrinter ladder_table({"Metric", "read", "write", "paper (R/W)"});
  const auto read_ladder = ebs::ComputeCovLadder(fleet, metrics, OpType::kRead);
  const auto write_ladder = ebs::ComputeCovLadder(fleet, metrics, OpType::kWrite);
  ladder_table.AddRow({"CoV vm2qp", TablePrinter::Fmt(ebs::Percentile(read_ladder.vm2qp, 50), 2),
                       TablePrinter::Fmt(ebs::Percentile(write_ladder.vm2qp, 50), 2),
                       "0.78 / 0.62"});
  ladder_table.AddRow({"CoV vm2vd", TablePrinter::Fmt(ebs::Percentile(read_ladder.vm2vd, 50), 2),
                       TablePrinter::Fmt(ebs::Percentile(write_ladder.vm2vd, 50), 2),
                       "0.97 / 0.96"});
  ladder_table.AddRow({"CoV vd2qp", TablePrinter::Fmt(ebs::Percentile(read_ladder.vd2qp, 50), 2),
                       TablePrinter::Fmt(ebs::Percentile(write_ladder.vd2qp, 50), 2),
                       "0.39 / 0.81"});
  ladder_table.Print(std::cout);

  // --- Fig 2(c): hottest-QP share CDF ----------------------------------------
  ebs::PrintBanner(std::cout, "Fig 2(c): per-node hottest-QP traffic share");
  TablePrinter qp_table({"Op", "p50", "p90", "share>80% of node traffic"});
  for (const OpType op : {OpType::kRead, OpType::kWrite}) {
    auto shares = ebs::HottestQpShares(fleet, metrics, op);
    const ebs::EmpiricalCdf cdf(shares);
    qp_table.AddRow({ebs::OpTypeName(op), TablePrinter::Fmt(cdf.Quantile(0.5), 2),
                     TablePrinter::Fmt(cdf.Quantile(0.9), 2),
                     TablePrinter::FmtPercent(1.0 - cdf.At(0.80))});
  }
  qp_table.Print(std::cout);
  for (const OpType op : {OpType::kRead, OpType::kWrite}) {
    const ebs::EmpiricalCdf cdf(ebs::HottestQpShares(fleet, metrics, op));
    std::cout << "  CDF (" << ebs::OpTypeName(op) << "): " << ebs::FormatCdfCurve(cdf)
              << "\n";
  }
  std::cout << "Paper: hottest QP >80% of node traffic on 42.6% of nodes (read), 20.1% "
               "(write).\n";

  // --- §4.2 node classification ----------------------------------------------
  const auto classes = ebs::ClassifyNodes(fleet, metrics);
  ebs::PrintBanner(std::cout, "Node classification (root causes of WT skew)");
  TablePrinter cls_table({"Metric", "Ours", "Paper"});
  cls_table.AddRow({"Type I fraction", TablePrinter::FmtPercent(classes.type1_fraction), "3.1%"});
  cls_table.AddRow({"Type II fraction", TablePrinter::FmtPercent(classes.type2_fraction),
                    "18.0%"});
  cls_table.AddRow({"Type III fraction", TablePrinter::FmtPercent(classes.type3_fraction),
                    "78.9%"});
  cls_table.AddRow({"Type I bare-metal share",
                    TablePrinter::FmtPercent(classes.type1_bare_metal_fraction), "60.1%"});
  cls_table.AddRow({"Hottest-VM share (R/W mean)",
                    TablePrinter::FmtPair(classes.mean_hottest_vm_share[0] * 100.0,
                                          classes.mean_hottest_vm_share[1] * 100.0),
                    "86.4 / 75.0"});
  cls_table.AddRow({"Type II hottest-WT share (R/W, 4-WT nodes)",
                    TablePrinter::FmtPair(classes.mean_type2_hottest_wt_share[0] * 100.0,
                                          classes.mean_type2_hottest_wt_share[1] * 100.0),
                    "83.6 / 69.8"});
  cls_table.Print(std::cout);
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
