// Fig 6 — LBA-level hotspots (§7.1-§7.2).
//
//  (a) access rate of each VD's hottest block vs block size;
//  (b) the hottest block's share of the VD's LBA space;
//  (c) write-to-read ratio of the hottest block (mostly write-dominant);
//  (d) hot rate: temporal continuity of the hottest block (~Gaussian, mean
//      ~50%).

#include <iostream>

#include "src/cache/hotspot.h"
#include "src/core/simulation.h"
#include "src/obs/report.h"
#include "src/util/histogram.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using ebs::TablePrinter;

void Run() {
  ebs::EbsSimulation sim(ebs::DcPreset(1));
  const ebs::Fleet& fleet = sim.fleet();
  const ebs::TraceDataset& traces = sim.traces();
  const ebs::VdTraceIndex index(fleet, traces);

  // VDs with enough sampled IOs for a meaningful per-VD distribution.
  const auto vds = index.ActiveVds(/*min_records=*/100);

  ebs::PrintBanner(std::cout, "Fig 6: hottest-block statistics across " +
                                  std::to_string(vds.size()) + " active VDs");
  TablePrinter table({"Block size", "access rate p50", "LBA share p50", "touched share p50",
                      "wr>1/3 share", "wr<-1/3 share", "hot rate mean"});
  for (const uint64_t block_mib : {64ULL, 256ULL, 1024ULL, 2048ULL}) {
    std::vector<double> access_rates;
    std::vector<double> size_fractions;
    std::vector<double> touched_fractions;
    std::vector<double> hot_rates;
    size_t write_dominant = 0;
    size_t read_dominant = 0;
    size_t counted = 0;
    for (const ebs::VdId vd : vds) {
      const auto stats = ebs::AnalyzeHottestBlock(
          index.ForVd(vd), fleet.vds[vd.value()].capacity_bytes, block_mib * ebs::kMiB,
          traces.window_seconds, /*subwindow_seconds=*/60.0);
      if (!stats) {
        continue;
      }
      ++counted;
      access_rates.push_back(stats->access_rate);
      size_fractions.push_back(stats->size_fraction);
      touched_fractions.push_back(stats->touched_fraction);
      hot_rates.push_back(stats->hot_rate);
      if (stats->wr_ratio > 1.0 / 3.0) {
        ++write_dominant;
      } else if (stats->wr_ratio < -1.0 / 3.0) {
        ++read_dominant;
      }
    }
    const double n = std::max<double>(1.0, static_cast<double>(counted));
    table.AddRow({std::to_string(block_mib) + " MiB",
                  TablePrinter::FmtPercent(ebs::Percentile(access_rates, 50)),
                  TablePrinter::FmtPercent(ebs::Percentile(size_fractions, 50)),
                  TablePrinter::FmtPercent(ebs::Percentile(touched_fractions, 50)),
                  TablePrinter::FmtPercent(static_cast<double>(write_dominant) / n),
                  TablePrinter::FmtPercent(static_cast<double>(read_dominant) / n),
                  TablePrinter::FmtPercent(ebs::Mean(hot_rates))});
  }
  table.Print(std::cout);

  // Fig 6(d) detail: the hot-rate CDF at 64 MiB (paper: ~Gaussian, mean 50%).
  {
    std::vector<double> hot_rates;
    for (const ebs::VdId vd : vds) {
      const auto stats = ebs::AnalyzeHottestBlock(
          index.ForVd(vd), fleet.vds[vd.value()].capacity_bytes, 64ULL * ebs::kMiB,
          traces.window_seconds, 60.0);
      if (stats) {
        hot_rates.push_back(stats->hot_rate);
      }
    }
    const ebs::EmpiricalCdf cdf(std::move(hot_rates));
    std::cout << "Hot-rate CDF @64MiB: " << ebs::FormatCdfCurve(cdf) << "\n";
  }
  std::cout << "\nPaper: a 64 MiB hottest block covers ~3% of the LBA yet draws ~18.2% of "
               "accesses; 93.9% of hottest blocks are write-dominant, only 5.5% read-"
               "dominant; hot rate ~Gaussian with mean 50%.\n";
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
