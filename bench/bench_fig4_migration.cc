// Fig 4(a)/(b) — frequent segment migration and importer-selection policies.
//
//  (a) per-cluster proportion of "frequent" migrations (a BS both imports and
//      exports within one detection window) under the production balancer;
//  (b) normalized interval between consecutive migrations of a segment, for
//      importer policies S1 Random, S2 MinTraffic (production), S3
//      MinVariance, S4 Lunule (linear fit), S5 Ideal (oracle). Expected:
//      S1 ~= S2, S4 can be worse, S5 roughly doubles the interval.

#include <iostream>

#include "bench/qmodel_tail.h"
#include "src/balancer/balancer.h"
#include "src/core/simulation.h"
#include "src/obs/report.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using ebs::TablePrinter;

void Run() {
  // Short periods -> ~85 balancing periods, enough to resolve the
  // migration-interval distribution (the paper has 1440 30 s periods).
  ebs::EbsSimulation sim(ebs::StorageStudyPreset());
  const ebs::Fleet& fleet = sim.fleet();
  const ebs::MetricDataset& metrics = sim.metrics();

  // --- Fig 4(a): frequent migrations per cluster ------------------------------
  ebs::PrintBanner(std::cout, "Fig 4(a): proportion of frequent migrations per cluster");
  TablePrinter freq_table({"Window", "p50 across clusters", "max", "clusters w/o frequent"});
  for (const size_t window_periods : {1UL, 2UL, 4UL}) {
    std::vector<double> proportions;
    size_t zero_clusters = 0;
    for (const ebs::StorageCluster& cluster : fleet.storage_clusters) {
      ebs::BalancerConfig config;
      config.period_steps = 15;
      config.policy = ebs::ImporterPolicy::kMinTraffic;
      ebs::InterBsBalancer balancer(fleet, metrics, cluster.id, config);
      const auto result = balancer.Run();
      const double proportion =
          ebs::FrequentMigrationProportion(result.migrations, window_periods);
      proportions.push_back(proportion);
      if (proportion == 0.0) {
        ++zero_clusters;
      }
    }
    freq_table.AddRow({std::to_string(window_periods) + " period(s)",
                       TablePrinter::FmtPercent(ebs::Percentile(proportions, 50)),
                       TablePrinter::FmtPercent(
                           proportions.empty()
                               ? 0.0
                               : *std::max_element(proportions.begin(), proportions.end())),
                       std::to_string(zero_clusters) + "/" +
                           std::to_string(proportions.size())});
  }
  freq_table.Print(std::cout);
  std::cout << "Paper: 56.8% of clusters show no frequent migration at the 15 s scale, but "
               "one cluster reaches 59.2%.\n";

  // --- Fig 4(b): importer policies -------------------------------------------
  ebs::PrintBanner(std::cout, "Fig 4(b): normalized migration interval by importer policy");
  TablePrinter interval_table({"Policy", "interval p50", "interval p25", "migrations"});
  for (const ebs::ImporterPolicy policy :
       {ebs::ImporterPolicy::kRandom, ebs::ImporterPolicy::kMinTraffic,
        ebs::ImporterPolicy::kMinVariance, ebs::ImporterPolicy::kLunule,
        ebs::ImporterPolicy::kIdeal}) {
    std::vector<double> intervals;
    size_t migrations = 0;
    for (const ebs::StorageCluster& cluster : fleet.storage_clusters) {
      ebs::BalancerConfig config;
      config.period_steps = 15;
      config.policy = policy;
      ebs::InterBsBalancer balancer(fleet, metrics, cluster.id, config);
      const auto result = balancer.Run();
      migrations += result.migrations.size();
      const auto cluster_intervals =
          ebs::MigrationIntervals(result.migrations, result.periods);
      intervals.insert(intervals.end(), cluster_intervals.begin(), cluster_intervals.end());
    }
    interval_table.AddRow({ebs::ImporterPolicyName(policy),
                           TablePrinter::Fmt(ebs::Percentile(intervals, 50), 2),
                           TablePrinter::Fmt(ebs::Percentile(intervals, 25), 2),
                           std::to_string(migrations)});
  }
  interval_table.Print(std::cout);
  std::cout << "Paper medians: Random 0.24, MinTraffic 0.24, Lunule 0.14 (worse!), Ideal "
               "0.48 (2x the production heuristic).\n";

  // --- EBS_QMODEL: tail effect of the balancer's final placement --------------
  if (ebs_bench::QmodelEnabled()) {
    // Replay the window as if every segment had started where the production
    // balancer (MinTraffic) finally put it.
    std::vector<uint32_t> remap(fleet.segments.size(), ebs::qmodel::QueueModelConfig::kNoRemap);
    size_t moved = 0;
    for (const ebs::StorageCluster& cluster : fleet.storage_clusters) {
      ebs::BalancerConfig config;
      config.period_steps = 15;
      config.policy = ebs::ImporterPolicy::kMinTraffic;
      ebs::InterBsBalancer balancer(fleet, metrics, cluster.id, config);
      for (const ebs::Migration& migration : balancer.Run().migrations) {
        if (remap[migration.segment.value()] == ebs::qmodel::QueueModelConfig::kNoRemap) {
          ++moved;
        }
        remap[migration.segment.value()] = migration.to.value();
      }
    }
    ebs::qmodel::QueueModelConfig qconfig;
    qconfig.enabled = true;
    const auto before = ebs::qmodel::RunOverTraces(fleet, qconfig, sim.traces(),
                                                   sim.traces().window_seconds);
    qconfig.segment_bs_remap = std::move(remap);
    const auto after = ebs::qmodel::RunOverTraces(fleet, qconfig, sim.traces(),
                                                  sim.traces().window_seconds);
    ebs_bench::PrintTailDelta(
        "Queueing tails: recorded placement vs balancer's final placement (EBS_QMODEL)",
        "recorded", before, "migrated", after);
    std::cout << "Segments migrated: " << moved
              << ". Migration rebalances BS queues; WT-side skew is untouched.\n";
  }
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
