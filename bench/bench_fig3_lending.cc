// Fig 3(d)-(g) — limited lending (Algorithm 2).
//
//  (d)/(e) the theoretical Reduction Rate (Eq. 3) of throttle duration at
//          lending rates p in {0.2, 0.4, 0.8}, for multi-VD VMs and multi-VM
//          nodes;
//  (f)/(g) the realized lending gain of the periodic proof-of-concept lending
//          mechanism. Expected: mostly positive, but negative tails at low p
//          because a lender can burst and hit its reduced cap.

#include <iostream>

#include "bench/qmodel_tail.h"
#include "src/core/simulation.h"
#include "src/obs/report.h"
#include "src/throttle/throttle.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using ebs::TablePrinter;

void RunGroups(const ebs::Fleet& fleet, const std::vector<ebs::RwSeries>& offered,
               const std::vector<ebs::SharingGroup>& groups, const std::string& label) {
  ebs::PrintBanner(std::cout, "Fig 3(d/e) [" + label + "]: reduction rate of throttle duration");
  TablePrinter reduction({"p", "RR p50 (throughput)", "RR p50 (IOPS)"});
  for (const double p : {0.2, 0.4, 0.8}) {
    ebs::ThrottleConfig config;
    const auto rates = ebs::ComputeReductionRates(fleet, offered, groups, config, p);
    reduction.AddRow({TablePrinter::Fmt(p, 1),
                      TablePrinter::FmtPercent(ebs::Percentile(rates.throughput, 50)),
                      TablePrinter::FmtPercent(ebs::Percentile(rates.iops, 50))});
  }
  reduction.Print(std::cout);

  ebs::PrintBanner(std::cout, "Fig 3(f/g) [" + label + "]: realized lending gain");
  TablePrinter gain_table({"p", "gain p50", "positive gain share", "negative gain share",
                           "groups"});
  for (const double p : {0.2, 0.4, 0.8}) {
    ebs::ThrottleConfig config;
    config.lending_rate = p;
    const auto gains = ebs::SimulateLending(fleet, offered, groups, config);
    size_t positive = 0;
    size_t negative = 0;
    for (const double g : gains) {
      if (g > 0.0) {
        ++positive;
      } else if (g < 0.0) {
        ++negative;
      }
    }
    const double n = std::max<double>(1.0, static_cast<double>(gains.size()));
    gain_table.AddRow({TablePrinter::Fmt(p, 1),
                       TablePrinter::Fmt(ebs::Percentile(gains, 50), 3),
                       TablePrinter::FmtPercent(static_cast<double>(positive) / n),
                       TablePrinter::FmtPercent(static_cast<double>(negative) / n),
                       std::to_string(gains.size())});
  }
  gain_table.Print(std::cout);
}

void Run() {
  ebs::EbsSimulation sim(ebs::DcPreset(1));
  const auto& offered = sim.workload().offered_vd;

  RunGroups(sim.fleet(), offered, ebs::MultiVdVmGroups(sim.fleet()), "multi-VD VM");
  RunGroups(sim.fleet(), offered, ebs::MultiVmNodeGroups(sim.fleet()), "multi-VM node");

  // What throttling costs in queueing delay (the Calcspar latency-spike
  // effect the paper cites), and what borrowed headroom buys back.
  ebs::PrintBanner(std::cout, "Throttle backlog: hypervisor queueing delay");
  TablePrinter backlog_table({"Lent headroom", "VDs with backlog", "max delay p50 (s)",
                              "max delay p99 (s)"});
  for (const double headroom_mbps : {0.0, 50.0, 150.0}) {
    const auto backlog =
        ebs::ComputeThrottleBacklog(sim.fleet(), offered, 1.0, headroom_mbps);
    std::vector<double> delays;
    for (const auto& entry : backlog) {
      delays.push_back(entry.max_delay_seconds);
    }
    backlog_table.AddRow({TablePrinter::Fmt(headroom_mbps, 0) + " MB/s",
                          std::to_string(backlog.size()),
                          TablePrinter::Fmt(ebs::Percentile(delays, 50.0), 2),
                          TablePrinter::Fmt(ebs::Percentile(delays, 99.0), 2)});
  }
  backlog_table.Print(std::cout);

  // --- EBS_QMODEL: the throttle's latency cost, and what lending buys back ----
  if (ebs_bench::QmodelEnabled()) {
    const ebs::Fleet& fleet = sim.fleet();
    ebs::qmodel::QueueModelConfig qconfig;
    qconfig.enabled = true;
    const auto uncapped = ebs::qmodel::RunOverTraces(fleet, qconfig, sim.traces(),
                                                     sim.traces().window_seconds);
    // Strict per-VD admission at the purchased cap (the production throttle).
    qconfig.vd_admission_bytes_per_sec.resize(fleet.vds.size());
    for (size_t v = 0; v < fleet.vds.size(); ++v) {
      qconfig.vd_admission_bytes_per_sec[v] = fleet.vds[v].throughput_cap_mbps * 1.0e6;
    }
    const auto throttled = ebs::qmodel::RunOverTraces(fleet, qconfig, sim.traces(),
                                                      sim.traces().window_seconds);
    // Limited lending at p=0.4: a burst may borrow idle sibling headroom.
    for (double& rate : qconfig.vd_admission_bytes_per_sec) {
      rate *= 1.4;
    }
    const auto lending = ebs::qmodel::RunOverTraces(fleet, qconfig, sim.traces(),
                                                    sim.traces().window_seconds);
    ebs_bench::PrintTailDelta("Queueing tails: uncapped vs per-VD throttle (EBS_QMODEL)",
                              "uncapped", uncapped, "throttled", throttled);
    ebs_bench::PrintTailDelta("Queueing tails: strict throttle vs lending p=0.4 (EBS_QMODEL)",
                              "throttled", throttled, "lending", lending);
    std::cout << "Throttling delays cap-hitting bursts (the Calcspar spike effect); lending "
                 "returns part of that delay to the borrower.\n";
  }

  std::cout << "\nPaper: at p=0.8, median RR 43.7% (throughput) and 3.9% (IOPS) for multi-VD "
               "VMs; 85.9% of samples gain at p=0.8 but 5.2% still lose at p=0.4.\n";
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
