// Ablation — §7.3.2's hybrid cache deployment.
//
// CN-only gives the best latency but provisions for the worst-case node;
// BS-only provisions evenly but gives up front-of-stack latency; the hybrid
// (CN budget with BS backstop) should approach CN-only latency at near
// BS-only provisioning pressure.

#include <iostream>
#include <vector>

#include "src/cache/hybrid.h"
#include "src/cache/prefetch.h"
#include "src/core/simulation.h"
#include "src/obs/report.h"
#include "src/trace/gc_model.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workload/io_stream.h"

namespace {

using ebs::TablePrinter;

void Run() {
  ebs::EbsSimulation sim(ebs::DcPreset(1));
  const ebs::VdTraceIndex index(sim.fleet(), sim.traces());

  ebs::PrintBanner(std::cout, "Cache deployment strategies (2048 MiB frozen cache per "
                              "cacheable VD)");
  TablePrinter table({"Deployment", "@CN", "@BS", "uncached", "write p50 gain",
                      "read p50 gain", "max CN slots", "max BS slots"});
  for (const ebs::CacheDeployment deployment :
       {ebs::CacheDeployment::kCnOnly, ebs::CacheDeployment::kBsOnly,
        ebs::CacheDeployment::kHybrid}) {
    ebs::HybridCacheConfig config;
    const auto result =
        ebs::EvaluateHybridDeployment(sim.fleet(), sim.traces(), index, deployment, config);
    table.AddRow({ebs::CacheDeploymentName(deployment), std::to_string(result.cached_at_cn),
                  std::to_string(result.cached_at_bs), std::to_string(result.uncached),
                  TablePrinter::FmtPercent(result.write_p50_gain),
                  TablePrinter::FmtPercent(result.read_p50_gain),
                  std::to_string(result.max_cn_slots_used),
                  std::to_string(result.max_bs_slots_used)});
  }
  table.Print(std::cout);

  ebs::PrintBanner(std::cout, "Hybrid CN budget sweep");
  TablePrinter sweep({"CN slots/node", "@CN", "@BS", "write p50 gain", "max CN slots"});
  for (const size_t slots : {1UL, 2UL, 4UL, 8UL}) {
    ebs::HybridCacheConfig config;
    config.cn_slots = slots;
    const auto result = ebs::EvaluateHybridDeployment(sim.fleet(), sim.traces(), index,
                                                      ebs::CacheDeployment::kHybrid, config);
    sweep.AddRow({std::to_string(slots), std::to_string(result.cached_at_cn),
                  std::to_string(result.cached_at_bs),
                  TablePrinter::FmtPercent(result.write_p50_gain),
                  std::to_string(result.max_cn_slots_used)});
  }
  sweep.Print(std::cout);
  std::cout << "\nExpected: a small CN budget captures most of the CN-only latency win while\n"
               "the BS backstop absorbs the hot-node overflow (the 7.3.2 recommendation).\n";

  // --- Production read prefetcher (§2.2) vs the hotspot reality (§7.2) -------
  // Mechanism check at full IO rate: a sequential 512 KiB scan with
  // interleaved random writes — the prefetcher serves the scan's steady
  // state. Then the fleet-level ceiling: the prefetcher can never touch the
  // write majority, which is where the hotspots are (§7.2).
  ebs::PrintBanner(std::cout, "Read prefetcher: mechanism vs fleet ceiling (2.2 / 7.2)");
  // Full-rate replay of a scan-heavy (BigData-profile) VD: the per-IO study
  // sampling would destroy.
  ebs::VdId scan_vd;
  for (const ebs::Vd& vd : sim.fleet().vds) {
    if (sim.fleet().vms[vd.vm.value()].app == ebs::AppType::kBigData &&
        vd.segments.size() >= 8) {
      scan_vd = vd.id;
      break;
    }
  }
  ebs::IoStreamConfig stream_config;
  stream_config.window_steps = 60;
  stream_config.read_rate_mbps = 120.0;
  stream_config.write_rate_mbps = 80.0;
  const auto stream = ebs::GenerateFullRateStream(sim.fleet(), scan_vd, stream_config);
  ebs::PrefetchCache scan_cache;
  uint64_t scan_hits = 0;
  uint64_t scan_reads = 0;
  for (const ebs::TraceRecord& r : stream) {
    if (r.op == ebs::OpType::kRead) {
      ++scan_reads;
      scan_hits += scan_cache.AccessRead(r.segment, r.offset, r.size_bytes) ? 1 : 0;
    } else {
      scan_cache.AccessWrite(r.segment, r.offset, r.size_bytes);
    }
  }
  const double scan_hit_ratio =
      scan_reads == 0 ? 0.0 : static_cast<double>(scan_hits) / static_cast<double>(scan_reads);

  uint64_t reads = 0;
  uint64_t writes = 0;
  for (const ebs::TraceRecord& r : sim.traces().records) {
    (r.op == ebs::OpType::kRead ? reads : writes) += 1;
  }
  const double read_share = static_cast<double>(reads) / static_cast<double>(reads + writes);

  TablePrinter prefetch({"Metric", "Value"});
  prefetch.AddRow({"full-rate BigData-VD read hit ratio (" +
                       std::to_string(stream.size()) + " IOs)",
                   TablePrinter::FmtPercent(scan_hit_ratio)});
  prefetch.AddRow({"fleet read share (by IOs)", TablePrinter::FmtPercent(read_share)});
  prefetch.AddRow({"prefetcher ceiling on all IOs",
                   TablePrinter::FmtPercent(scan_hit_ratio * read_share)});
  prefetch.Print(std::cout);
  std::cout << "\nThe mechanism works for scans, but the hottest blocks are write-dominant\n"
               "and writes are never buffered — hence 7.2's conclusion that the existing\n"
               "prefetching cache has limited effect and persistent write-capable caches\n"
               "(FrozenHot on flash/PMEM) are needed.\n";

  // --- GC-induced tails: what no front cache can absorb ----------------------
  ebs::PrintBanner(std::cout, "GC-induced tail latency (BS garbage collection, 2.1)");
  ebs::GcConfig gc_config;
  gc_config.trigger_bytes = 8e9;
  const auto schedule = ebs::BuildGcSchedule(sim.fleet(), sim.metrics(), gc_config);
  ebs::TraceDataset gc_traces = sim.traces();  // copy, then inflate
  const size_t affected = ebs::ApplyGcModel(gc_traces, schedule, gc_config);

  auto p99 = [](const ebs::TraceDataset& traces, ebs::OpType op) {
    std::vector<double> totals;
    for (const ebs::TraceRecord& r : traces.records) {
      if (r.op == op) {
        totals.push_back(r.latency.Total());
      }
    }
    return ebs::Percentile(totals, 99.0);
  };
  TablePrinter gc_table({"Metric", "no GC", "with GC"});
  gc_table.AddRow({"write p99 latency (us)",
                   TablePrinter::Fmt(p99(sim.traces(), ebs::OpType::kWrite), 0),
                   TablePrinter::Fmt(p99(gc_traces, ebs::OpType::kWrite), 0)});
  gc_table.AddRow({"read p99 latency (us)",
                   TablePrinter::Fmt(p99(sim.traces(), ebs::OpType::kRead), 0),
                   TablePrinter::Fmt(p99(gc_traces, ebs::OpType::kRead), 0)});
  gc_table.AddRow({"GC windows / affected IOs", std::to_string(schedule.total_windows),
                   std::to_string(affected)});
  gc_table.Print(std::cout);
  std::cout << "\nGC pauses ride on write load at the ChunkServer — behind every cache\n"
               "placement — which is one more reason neither CN- nor BS-cache moves the\n"
               "p99 in Fig 7(b)/(c).\n";
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
