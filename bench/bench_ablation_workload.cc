// Ablation — which ingredients of the workload model produce which paper
// shapes. Each row disables one structural mechanism and shows which
// headline statistic collapses:
//   episodic reads    -> VM-level read P2A;
//   QP concentration  -> WT-CoV / hottest-QP share;
//   LBA hot block     -> hottest-block access rate.

#include <iostream>

#include "src/analysis/skewness.h"
#include "src/cache/hotspot.h"
#include "src/core/simulation.h"
#include "src/hypervisor/wt_balance.h"
#include "src/obs/report.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using ebs::OpType;
using ebs::TablePrinter;

struct Variant {
  std::string name;
  bool episodic_reads;
  bool qp_concentration;
  double hot_prob_scale;
};

void Run() {
  const std::vector<Variant> variants = {
      {"full model", true, true, 1.0},
      {"- episodic reads", false, true, 1.0},
      {"- QP concentration", true, false, 1.0},
      {"- zipf hot block", true, true, 0.0},
  };

  ebs::PrintBanner(std::cout, "Workload design-choice ablation");
  TablePrinter table({"Variant", "VM read P2A p50", "WT-CoV p50 (60s)",
                      "hottest-QP share p50", "hot-block rate p50 (64MiB)"});
  for (const Variant& variant : variants) {
    ebs::SimulationConfig config = ebs::DcPreset(1);
    config.workload.episodic_reads = variant.episodic_reads;
    config.workload.qp_concentration = variant.qp_concentration;
    config.workload.hot_prob_scale = variant.hot_prob_scale;
    ebs::EbsSimulation sim(config);

    const auto p2a = ebs::EntityP2a(sim.VmSeries(), OpType::kRead);
    const auto wt_cov = ebs::WtCovSamples(sim.fleet(), sim.metrics(), OpType::kWrite, 60);
    const auto qp_share = ebs::HottestQpShares(sim.fleet(), sim.metrics(), OpType::kWrite);

    const ebs::VdTraceIndex index(sim.fleet(), sim.traces());
    std::vector<double> hot_rates;
    for (const ebs::VdId vd : index.ActiveVds(100)) {
      const auto stats = ebs::AnalyzeHottestBlock(
          index.ForVd(vd), sim.fleet().vds[vd.value()].capacity_bytes, 64ULL * ebs::kMiB,
          sim.traces().window_seconds, 60.0);
      if (stats) {
        hot_rates.push_back(stats->access_rate);
      }
    }

    table.AddRow({variant.name, TablePrinter::Fmt(ebs::Percentile(p2a, 50.0), 1),
                  TablePrinter::Fmt(ebs::Percentile(wt_cov, 50.0), 2),
                  TablePrinter::FmtPercent(ebs::Percentile(qp_share, 50.0)),
                  TablePrinter::FmtPercent(ebs::Percentile(hot_rates, 50.0))});
  }
  table.Print(std::cout);
  std::cout << "\nEach mechanism maps to one paper observation. Note the last row: removing\n"
               "the zipf hot region does NOT kill the hottest-block rate — the sequential\n"
               "write stream concentrates on its own span and becomes the hottest block,\n"
               "matching the paper's inference that 'the hottest block may perform\n"
               "sequential write' (7.3.1).\n";
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
