// Fig 4(c) — MSE of the five traffic predictors on per-BS traffic.
//
//   P1 linear fit, P2 ARIMA, P3 GBT (per-epoch), P4 attention (per-epoch),
//   P5 attention (per-period fine-tuning).
// Expected shape: P2 best among P1-P4; P1 worst or near-worst; P5 < P4
// (fresher updates beat stale epoch models).

#include <iostream>

#include "src/balancer/prediction.h"
#include "src/core/simulation.h"
#include "src/obs/report.h"
#include "src/util/table.h"

namespace {

using ebs::TablePrinter;

void Run() {
  // Longer window so the learned models see enough periods.
  ebs::SimulationConfig config = ebs::StorageStudyPreset();
  config.workload.window_steps = 1200;
  ebs::EbsSimulation sim(config);

  // Pick the busiest cluster.
  const auto bs = sim.BsSeries();
  ebs::StorageClusterId busiest;
  double best_traffic = -1.0;
  for (const ebs::StorageCluster& cluster : sim.fleet().storage_clusters) {
    double traffic = 0.0;
    for (const ebs::StorageNodeId node : cluster.nodes) {
      const ebs::BlockServerId server = sim.fleet().storage_nodes[node.value()].block_server;
      traffic += bs[server.value()].write_bytes.SumAll();
    }
    if (traffic > best_traffic) {
      best_traffic = traffic;
      busiest = cluster.id;
    }
  }

  ebs::PredictionExperimentConfig experiment;
  const auto results =
      ebs::RunPredictionExperiment(sim.fleet(), sim.metrics(), busiest, experiment);

  ebs::PrintBanner(std::cout, "Fig 4(c): predictor MSE on per-BS write traffic "
                              "(normalized per BS; lower is better)");
  TablePrinter table({"Predictor", "MSE", "model (re)fits"});
  for (const auto& result : results) {
    table.AddRow({result.name, TablePrinter::Fmt(result.mse, 4),
                  TablePrinter::Fmt(result.refits, 0)});
  }
  table.Print(std::cout);
  std::cout << "Paper shape: ARIMA lowest of P1-P4; linear fit highest; per-period "
               "attention (P5) beats per-epoch attention (P4) at a much higher refit "
               "cost.\n";
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
