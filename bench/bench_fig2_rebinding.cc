// Fig 2(d)-(f) + §4.4 — trace-driven rebinding simulation and hosting models.
//
//  (d) rebinding ratio vs rebinding gain per node (gain = CoV_after /
//      CoV_before; < 1 means rebinding helped). The paper's key point:
//      rebinding is NOT universally profitable — bursty nodes rebind often
//      yet gain nothing.
//  (e)/(f) the hottest WT's fine-grained traffic series for the most bursty
//      (node-b) vs a smooth (node-r) node, summarized by P2A.
//  §4.4: static binding vs rebinding vs per-IO dispatch (multi-WT hosting).

#include <algorithm>
#include <iostream>

#include "bench/qmodel_tail.h"
#include "src/core/simulation.h"
#include "src/hypervisor/rebinding.h"
#include "src/obs/report.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using ebs::TablePrinter;

void Run() {
  ebs::EbsSimulation sim(ebs::DcPreset(1));
  const ebs::Fleet& fleet = sim.fleet();
  const ebs::TraceDataset& traces = sim.traces();

  // The paper's setting: 10 ms rebinding periods. Gain is evaluated over 1 s
  // sub-windows, so a node whose traffic arrives in sub-period (<10 ms)
  // clusters cannot be helped — the cluster always lands on a single WT no
  // matter how the stale swap placed its QP.
  ebs::RebindingConfig config;
  config.period_seconds = 0.010;

  const auto results = ebs::SimulateRebinding(fleet, traces, config);

  ebs::PrintBanner(std::cout, "Fig 2(d): rebinding ratio vs gain (gain<1 means improvement)");
  std::vector<double> gains;
  std::vector<double> ratios;
  size_t improved = 0;
  for (const auto& r : results) {
    gains.push_back(r.gain);
    ratios.push_back(r.rebinding_ratio);
    if (r.gain < 1.0) {
      ++improved;
    }
  }
  TablePrinter table({"Metric", "Value"});
  table.AddRow({"Nodes simulated", std::to_string(results.size())});
  std::vector<double> active_ratios;
  size_t materially = 0;
  for (const auto& r : results) {
    active_ratios.push_back(r.active_rebinding_ratio);
    if (r.gain < 0.9) {
      ++materially;
    }
  }
  table.AddRow({"Median rebinding ratio", TablePrinter::FmtPercent(ebs::Percentile(ratios, 50))});
  table.AddRow({"Median rebinding ratio (active periods)",
                TablePrinter::FmtPercent(ebs::Percentile(active_ratios, 50))});
  table.AddRow({"Median gain", TablePrinter::FmtPercent(ebs::Percentile(gains, 50))});
  table.AddRow({"Nodes improved (gain < 100%)",
                TablePrinter::FmtPercent(
                    static_cast<double>(improved) /
                    static_cast<double>(std::max<size_t>(1, results.size())))});
  table.AddRow({"Nodes materially improved (gain < 90%)",
                TablePrinter::FmtPercent(
                    static_cast<double>(materially) /
                    static_cast<double>(std::max<size_t>(1, results.size())))});
  table.Print(std::cout);
  std::cout << "Paper: only ~30% of nodes see a real gain; some nodes rebind in 60% of "
               "periods with gain ~= 100% (no improvement).\n";

  // --- Fig 2(e)/(f): bursty vs smooth node -----------------------------------
  // node-b: the node with the highest hottest-WT P2A among high-traffic nodes;
  // node-r: the one with the lowest.
  const ebs::NodeRebindingResult* node_b = nullptr;
  const ebs::NodeRebindingResult* node_r = nullptr;
  for (const auto& r : results) {
    if (node_b == nullptr || r.p2a_10ms > node_b->p2a_10ms) {
      node_b = &r;
    }
    if (node_r == nullptr || (r.p2a_10ms > 0 && r.p2a_10ms < node_r->p2a_10ms)) {
      node_r = &r;
    }
  }
  if (node_b != nullptr && node_r != nullptr) {
    ebs::PrintBanner(std::cout, "Fig 2(e)/(f): hottest-WT burstiness, node-b vs node-r");
    TablePrinter burst({"Node", "P2A (period scale)", "rebinding ratio", "gain"});
    burst.AddRow({"node-b (bursty)", TablePrinter::Fmt(node_b->p2a_10ms, 1),
                  TablePrinter::FmtPercent(node_b->rebinding_ratio),
                  TablePrinter::FmtPercent(node_b->gain)});
    burst.AddRow({"node-r (smooth)", TablePrinter::Fmt(node_r->p2a_10ms, 1),
                  TablePrinter::FmtPercent(node_r->rebinding_ratio),
                  TablePrinter::FmtPercent(node_r->gain)});
    burst.Print(std::cout);
    std::cout << "Paper: node-b P2A = 80.6, 7.7x node-r; bursts shorter than the rebinding "
                 "period defeat rebinding.\n";
  }

  // --- §4.4 hosting model comparison -----------------------------------------
  ebs::PrintBanner(std::cout, "Hosting models: WT balance vs synchronization cost");
  TablePrinter hosting({"Model", "median WT-CoV", "mean WT-CoV", "handoffs/IO"});
  ebs::RebindingConfig hosting_config = config;
  hosting_config.gain_window_seconds = 60.0;  // balance over scheduler-relevant horizons
  for (const auto& r : ebs::CompareHostingModels(fleet, traces, hosting_config)) {
    hosting.AddRow({ebs::HostingModelName(r.model), TablePrinter::Fmt(r.median_wt_cov, 3),
                    TablePrinter::Fmt(r.mean_wt_cov, 3),
                    TablePrinter::Fmt(r.handoffs_per_io, 3)});
  }
  hosting.Print(std::cout);
  std::cout << "Expected: per-IO dispatch balances nearly perfectly (CoV ~ 0) but pays a "
               "per-IO handoff cost, motivating hardware dispatch (§4.4).\n";

  // --- EBS_QMODEL: what per-IO dispatch buys in tail latency ------------------
  if (ebs_bench::QmodelEnabled()) {
    ebs::qmodel::QueueModelConfig qconfig;
    qconfig.enabled = true;
    const auto bound =
        ebs::qmodel::RunOverTraces(fleet, qconfig, traces, traces.window_seconds);
    qconfig.dispatch = ebs::qmodel::WtDispatch::kLeastLoadedInNode;
    const auto spread =
        ebs::qmodel::RunOverTraces(fleet, qconfig, traces, traces.window_seconds);
    ebs_bench::PrintTailDelta(
        "Queueing tails: QP binding vs per-IO least-loaded dispatch (EBS_QMODEL)",
        "QP binding", bound, "least-loaded", spread);
    std::cout << "Spreading a node's IOs over its WTs removes intra-node WT queueing; the "
                 "residual tail is cross-node skew.\n";
  }
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
