// Million-VD scale pass: throughput and memory of the aggregation hot path
// as the fleet grows, and worker-count invariance of the streaming engine.
//
// Two scenario families, one JSON (BENCH_SCALE.json):
//
//   agg_<tier>      batch generation + trace aggregation at three fleet
//                   tiers. Times the production dense path (vector-indexed
//                   qp series + SegmentSeriesMap slots + RwMatrix rollups)
//                   against an in-bench reference that re-creates the old
//                   hash-map-of-struct layout (unordered_map<uint32_t,
//                   RwSeries> probed per record), and — the headline — the
//                   per-record metric-resolution hot path: four replay-shard
//                   threads resolving this tier's per-QP counters through
//                   the striped-table MetricRegistry vs the pre-refactor
//                   layout (one global mutex over a std::map<std::string>,
//                   an O(log n) string tree-walk under full serialization).
//                   wall_metrics_speedup at the largest tier must clear 2x;
//                   in practice the striped table lands well above it.
//
//   workers_<n>     the same medium-tier config through StreamingSimulation
//                   at 1/2/4 worker threads. The VD/BS rollup fingerprints
//                   must be identical across worker counts — the bench exits
//                   nonzero on any divergence, so worker-sweep determinism
//                   is enforced here, not just in ctest.
//
// Field conventions (scripts/check_bench.py): plain numeric fields are
// deterministic functions of the seed and gate CI against the committed
// BENCH_SCALE.json baseline; "wall_"-prefixed fields are wall-clock
// measurements, machine-dependent, and never gate; "fingerprint" is
// informational.
//
// Usage: bench_scale [output.json]   (default BENCH_SCALE.json)

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/simulation.h"
#include "src/core/streaming.h"
#include "src/obs/metrics.h"
#include "src/obs/report.h"
#include "src/util/thread_annotations.h"
#include "src/trace/aggregate.h"
#include "src/trace/records.h"
#include "src/trace/rollup_dense.h"
#include "src/util/table.h"
#include "src/workload/generator.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

struct ScaleRow {
  std::string name;
  // Deterministic (gated) fields.
  uint64_t records = 0;
  uint64_t qps = 0;
  uint64_t vds = 0;
  uint64_t active_segments = 0;
  uint64_t metric_ops = 0;
  double total_gib = 0.0;
  double agg_bytes_per_record = 0.0;
  // Wall-clock (informational) fields.
  double wall_generate_s = 0.0;
  double wall_dense_agg_s = 0.0;
  double wall_map_agg_s = 0.0;
  double wall_agg_speedup = 0.0;
  double wall_dense_records_per_sec = 0.0;
  double wall_rollup_s = 0.0;
  double wall_metrics_legacy_s = 0.0;
  double wall_metrics_striped_s = 0.0;
  double wall_metrics_speedup = 0.0;
  double wall_metrics_records_per_sec = 0.0;
  uint64_t fingerprint = 0;
};

uint64_t FnvMix(uint64_t h, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h = (h ^ bytes[i]) * 1099511628211ULL;
  }
  return h;
}

uint64_t FingerprintSeries(uint64_t h, const std::vector<ebs::RwSeries>& rollup) {
  for (const ebs::RwSeries& series : rollup) {
    for (size_t t = 0; t < series.read_bytes.size(); ++t) {
      const double values[4] = {series.read_bytes[t], series.write_bytes[t],
                                series.read_ops[t], series.write_ops[t]};
      h = FnvMix(h, values, sizeof(values));
    }
  }
  return h;
}

// The pre-SoA layout of the aggregation hot path: one hash probe per record
// per domain, each hit landing in a struct of four separately allocated step
// arrays. Kept here (not in src/) purely as the bench's reference point.
ebs::MetricDataset MapReferenceAggregate(const ebs::Fleet& fleet, const ebs::TraceDataset& traces,
                                         double step_seconds, size_t window_steps) {
  std::unordered_map<uint32_t, ebs::RwSeries> qp_map;
  std::unordered_map<uint32_t, ebs::RwSeries> seg_map;
  const double scale = 1.0 / traces.sampling_rate;
  for (const ebs::TraceRecord& r : traces.records) {
    size_t step = static_cast<size_t>(r.timestamp / step_seconds);
    step = std::min(step, window_steps - 1);
    const double bytes = static_cast<double>(r.size_bytes) * scale;

    ebs::RwSeries& qp =
        qp_map.try_emplace(r.qp.value(), window_steps, step_seconds).first->second;
    qp.MutableBytes(r.op)[step] += bytes;
    qp.MutableOps(r.op)[step] += scale;

    ebs::RwSeries& seg =
        seg_map.try_emplace(r.segment.value(), window_steps, step_seconds).first->second;
    seg.MutableBytes(r.op)[step] += bytes;
    seg.MutableOps(r.op)[step] += scale;
  }
  // Flatten into a MetricDataset so totals can be cross-checked against the
  // dense path.
  ebs::MetricDataset metrics;
  metrics.step_seconds = step_seconds;
  metrics.window_steps = window_steps;
  metrics.qp_series.assign(fleet.qps.size(), ebs::RwSeries(window_steps, step_seconds));
  for (size_t q = 0; q < fleet.qps.size(); ++q) {
    if (auto it = qp_map.find(static_cast<uint32_t>(q)); it != qp_map.end()) {
      metrics.qp_series[q] = std::move(it->second);
    }
  }
  std::vector<uint32_t> seg_ids;
  seg_ids.reserve(seg_map.size());
  for (const auto& [id, series] : seg_map) {  // ebs-lint: allow(unordered-iter) key collection, sorted below
    seg_ids.push_back(id);
  }
  std::sort(seg_ids.begin(), seg_ids.end());
  for (const uint32_t id : seg_ids) {
    metrics.segment_series.Insert(id, std::move(seg_map.at(id)));
  }
  return metrics;
}

// The pre-refactor MetricRegistry layout: every GetCounter takes one global
// mutex and walks an ordered std::map<std::string> (an O(log n) chain of
// string compares, fully serialized across threads). Kept here (not in src/)
// purely as the bench's reference point; the production registry now resolves
// through a striped open-addressing table (src/util/striped_table.h).
class LegacyMetricRegistry {
 public:
  ebs::obs::Counter* GetCounter(std::string_view name) {
    ebs::util::MutexLock lock(&mu_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(std::string(name), std::make_unique<ebs::obs::Counter>(&enabled_))
               .first;
    }
    return it->second.get();
  }

  uint64_t TotalCount() {
    ebs::util::MutexLock lock(&mu_);
    uint64_t total = 0;
    for (const auto& [name, counter] : counters_) {
      total += counter->Value();
    }
    return total;
  }

 private:
  ebs::util::Mutex mu_;
  std::map<std::string, std::unique_ptr<ebs::obs::Counter>, std::less<>> counters_
      EBS_GUARDED_BY(mu_);
  std::atomic<bool> enabled_{true};
};

constexpr size_t kMetricThreads = 4;  // replay-shard count the engine defaults to

// Per-record metric emission at fleet scale: kMetricThreads shards each walk
// the tier's full trace, resolving the record's per-QP counter by name and
// incrementing it — the access pattern replay sinks and the streaming engine
// put on the registry, skew included. Runs the workload against `resolve`
// and returns wall seconds; the caller cross-checks the summed counts.
template <typename Registry>
double TimeMetricEmission(Registry& registry, const ebs::TraceDataset& traces,
                          const std::vector<std::string>& qp_names) {
  const auto begin = Clock::now();
  std::vector<std::thread> shards;
  shards.reserve(kMetricThreads);
  for (size_t shard = 0; shard < kMetricThreads; ++shard) {
    shards.emplace_back([&registry, &traces, &qp_names] {
      for (const ebs::TraceRecord& r : traces.records) {
        registry.GetCounter(qp_names[r.qp.value()])->Increment();
      }
    });
  }
  for (std::thread& shard : shards) {
    shard.join();
  }
  return Seconds(begin, Clock::now());
}

double TotalGib(const ebs::MetricDataset& metrics) {
  double total = 0.0;
  for (const ebs::RwSeries& series : metrics.qp_series) {
    total += series.TotalBytes();
  }
  return total / (1024.0 * 1024.0 * 1024.0);
}

ScaleRow RunTier(const std::string& name, int user_count, size_t window_steps) {
  ebs::SimulationConfig config = ebs::DcPreset(1);
  config.fleet.user_count = user_count;
  config.workload.window_steps = window_steps;

  ScaleRow row;
  row.name = name;

  const ebs::Fleet fleet = ebs::BuildFleet(config.fleet);
  const auto gen_begin = Clock::now();
  const ebs::WorkloadResult result =
      ebs::WorkloadGenerator(fleet, config.workload).Generate();
  row.wall_generate_s = Seconds(gen_begin, Clock::now());

  const double step_seconds = result.metrics.step_seconds;

  // Dense production path: trace aggregation + all seven SoA rollups.
  const auto dense_begin = Clock::now();
  const ebs::MetricDataset dense =
      ebs::AggregateTraces(fleet, result.traces, step_seconds, window_steps);
  row.wall_dense_agg_s = Seconds(dense_begin, Clock::now());

  const auto rollup_begin = Clock::now();
  const ebs::RwMatrix vd = ebs::RollupMatrixToVd(fleet, dense);
  const ebs::RwMatrix vm = ebs::RollupMatrixToVm(fleet, dense);
  const ebs::RwMatrix user = ebs::RollupMatrixToUser(fleet, dense);
  const ebs::RwMatrix wt = ebs::RollupMatrixToWt(fleet, dense);
  const ebs::RwMatrix cn = ebs::RollupMatrixToComputeNode(fleet, dense);
  const ebs::RwMatrix bs = ebs::RollupMatrixToBlockServer(fleet, dense);
  const ebs::RwMatrix sn = ebs::RollupMatrixToStorageNode(fleet, dense);
  row.wall_rollup_s = Seconds(rollup_begin, Clock::now());

  // Reference hash-map path over the same records.
  const auto map_begin = Clock::now();
  const ebs::MetricDataset mapped =
      MapReferenceAggregate(fleet, result.traces, step_seconds, window_steps);
  row.wall_map_agg_s = Seconds(map_begin, Clock::now());

  // Same records, same per-accumulator addition order: the two paths must
  // agree exactly, or the speedup is measuring the wrong computation.
  const double dense_gib = TotalGib(dense);
  const double mapped_gib = TotalGib(mapped);
  if (dense_gib != mapped_gib) {
    std::cerr << "bench_scale: dense/map aggregation mismatch at " << name << ": " << dense_gib
              << " vs " << mapped_gib << " GiB\n";
    std::exit(1);
  }

  // Per-record metric resolution: legacy global-mutex map vs striped table.
  std::vector<std::string> qp_names;
  qp_names.reserve(fleet.qps.size());
  for (size_t q = 0; q < fleet.qps.size(); ++q) {
    qp_names.push_back("qp." + std::to_string(q) + ".records");
  }
  LegacyMetricRegistry legacy_registry;
  row.wall_metrics_legacy_s = TimeMetricEmission(legacy_registry, result.traces, qp_names);
  ebs::obs::MetricRegistry striped_registry;
  striped_registry.set_enabled(true);
  row.wall_metrics_striped_s = TimeMetricEmission(striped_registry, result.traces, qp_names);

  // Both registries must have counted every record on every shard, exactly.
  const uint64_t expected_ops = kMetricThreads * result.traces.records.size();
  uint64_t striped_total = 0;
  for (const ebs::obs::MetricSnapshot& metric : striped_registry.Snapshot().metrics) {
    striped_total += static_cast<uint64_t>(metric.value);
  }
  if (legacy_registry.TotalCount() != expected_ops || striped_total != expected_ops) {
    std::cerr << "bench_scale: metric emission mismatch at " << name << ": legacy "
              << legacy_registry.TotalCount() << ", striped " << striped_total << ", expected "
              << expected_ops << "\n";
    std::exit(1);
  }
  row.metric_ops = expected_ops;
  row.wall_metrics_speedup = row.wall_metrics_legacy_s / row.wall_metrics_striped_s;
  row.wall_metrics_records_per_sec =
      static_cast<double>(expected_ops) / row.wall_metrics_striped_s;

  row.records = result.traces.records.size();
  row.qps = fleet.qps.size();
  row.vds = fleet.vds.size();
  row.active_segments = dense.segment_series.size();
  row.total_gib = dense_gib;
  // Metric-dataset footprint per trace record (four 8-byte channels per step
  // for every QP and active segment). Deterministic; staying flat across
  // tiers is the "memory scales with entities, not records" invariant.
  row.agg_bytes_per_record =
      static_cast<double>((row.qps + row.active_segments) * window_steps * 4 * 8) /
      static_cast<double>(row.records);
  row.wall_agg_speedup = row.wall_map_agg_s / row.wall_dense_agg_s;
  row.wall_dense_records_per_sec =
      static_cast<double>(row.records) / row.wall_dense_agg_s;

  uint64_t h = 1469598103934665603ULL;
  h = FingerprintSeries(h, vd.ToSeriesVector());
  h = FingerprintSeries(h, bs.ToSeriesVector());
  (void)vm;
  (void)user;
  (void)wt;
  (void)cn;
  (void)sn;
  row.fingerprint = h;
  return row;
}

struct WorkerRow {
  std::string name;
  uint64_t workers = 0;
  uint64_t records = 0;
  double total_gib = 0.0;
  double wall_run_s = 0.0;
  uint64_t fingerprint = 0;
};

WorkerRow RunWorkers(size_t workers, int user_count, size_t window_steps) {
  ebs::SimulationConfig config = ebs::DcPreset(1);
  config.fleet.user_count = user_count;
  config.workload.window_steps = window_steps;
  ebs::ReplayOptions options;
  options.worker_threads = workers;

  WorkerRow row;
  row.name = "workers_" + std::to_string(workers);
  row.workers = workers;

  const auto begin = Clock::now();
  ebs::StreamingSimulation sim(config, options);
  sim.Run();
  row.wall_run_s = Seconds(begin, Clock::now());

  row.records = sim.traces().records.size();
  row.total_gib = TotalGib(sim.metrics());
  uint64_t h = 1469598103934665603ULL;
  h = FingerprintSeries(h, sim.VdSeries());
  h = FingerprintSeries(h, sim.BsSeries());
  row.fingerprint = h;
  return row;
}

std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string Hex(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return buf;
}

void AppendScaleJson(std::string* out, const ScaleRow& row) {
  *out += "{\"name\":\"" + row.name + "\"";
  *out += ",\"records\":" + std::to_string(row.records);
  *out += ",\"qps\":" + std::to_string(row.qps);
  *out += ",\"vds\":" + std::to_string(row.vds);
  *out += ",\"active_segments\":" + std::to_string(row.active_segments);
  *out += ",\"metric_ops\":" + std::to_string(row.metric_ops);
  *out += ",\"total_gib\":" + Num(row.total_gib);
  *out += ",\"agg_bytes_per_record\":" + Num(row.agg_bytes_per_record);
  *out += ",\"wall_generate_s\":" + Num(row.wall_generate_s);
  *out += ",\"wall_dense_agg_s\":" + Num(row.wall_dense_agg_s);
  *out += ",\"wall_map_agg_s\":" + Num(row.wall_map_agg_s);
  *out += ",\"wall_agg_speedup\":" + Num(row.wall_agg_speedup);
  *out += ",\"wall_dense_records_per_sec\":" + Num(row.wall_dense_records_per_sec);
  *out += ",\"wall_rollup_s\":" + Num(row.wall_rollup_s);
  *out += ",\"wall_metrics_legacy_s\":" + Num(row.wall_metrics_legacy_s);
  *out += ",\"wall_metrics_striped_s\":" + Num(row.wall_metrics_striped_s);
  *out += ",\"wall_metrics_speedup\":" + Num(row.wall_metrics_speedup);
  *out += ",\"wall_metrics_records_per_sec\":" + Num(row.wall_metrics_records_per_sec);
  *out += ",\"fingerprint\":\"" + Hex(row.fingerprint) + "\"}";
}

void AppendWorkerJson(std::string* out, const WorkerRow& row) {
  *out += "{\"name\":\"" + row.name + "\"";
  *out += ",\"workers\":" + std::to_string(row.workers);
  *out += ",\"records\":" + std::to_string(row.records);
  *out += ",\"total_gib\":" + Num(row.total_gib);
  *out += ",\"wall_run_s\":" + Num(row.wall_run_s);
  *out += ",\"fingerprint\":\"" + Hex(row.fingerprint) + "\"}";
}

bool WriteJson(const std::vector<ScaleRow>& tiers, const std::vector<WorkerRow>& workers,
               const std::string& path) {
  std::string json = "{\"bench\":\"scale\",\"scenarios\":[";
  bool first = true;
  for (const ScaleRow& row : tiers) {
    if (!first) {
      json += ",";
    }
    first = false;
    AppendScaleJson(&json, row);
  }
  for (const WorkerRow& row : workers) {
    json += ",";
    AppendWorkerJson(&json, row);
  }
  json += "]}\n";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = std::ferror(file) == 0;
  return (std::fclose(file) == 0) && ok;
}

int Run(const std::string& out_path) {
  std::vector<ScaleRow> tiers;
  tiers.push_back(RunTier("agg_small", 60, 180));
  tiers.push_back(RunTier("agg_medium", 160, 180));
  tiers.push_back(RunTier("agg_large", 400, 180));

  ebs::PrintBanner(std::cout, "Aggregation hot path: dense SoA vs hash-map reference");
  ebs::TablePrinter table({"tier", "records", "QPs", "segments", "dense s", "map s", "speedup",
                           "Mrec/s", "B/record"});
  for (const ScaleRow& row : tiers) {
    table.AddRow({row.name, std::to_string(row.records), std::to_string(row.qps),
                  std::to_string(row.active_segments), ebs::TablePrinter::Fmt(row.wall_dense_agg_s, 3),
                  ebs::TablePrinter::Fmt(row.wall_map_agg_s, 3),
                  ebs::TablePrinter::Fmt(row.wall_agg_speedup, 2),
                  ebs::TablePrinter::Fmt(row.wall_dense_records_per_sec / 1e6, 2),
                  ebs::TablePrinter::Fmt(row.agg_bytes_per_record, 1)});
  }
  table.Print(std::cout);
  const ScaleRow& largest = tiers.back();
  std::cout << "Largest tier: dense path is " << ebs::TablePrinter::Fmt(largest.wall_agg_speedup, 2)
            << "x the hash-map reference ("
            << ebs::TablePrinter::Fmt(largest.wall_dense_records_per_sec / 1e6, 2)
            << "M records/s); agg_bytes_per_record stays flat across tiers (entity-bound, "
               "not record-bound).\n";

  ebs::PrintBanner(std::cout,
                   "Per-record metric resolution: striped table vs global-mutex map (4 shards)");
  ebs::TablePrinter metrics_table(
      {"tier", "ops", "counters", "legacy s", "striped s", "speedup", "Mrec/s"});
  for (const ScaleRow& row : tiers) {
    metrics_table.AddRow(
        {row.name, std::to_string(row.metric_ops), std::to_string(row.qps),
         ebs::TablePrinter::Fmt(row.wall_metrics_legacy_s, 3),
         ebs::TablePrinter::Fmt(row.wall_metrics_striped_s, 3),
         ebs::TablePrinter::Fmt(row.wall_metrics_speedup, 2),
         ebs::TablePrinter::Fmt(row.wall_metrics_records_per_sec / 1e6, 2)});
  }
  metrics_table.Print(std::cout);
  std::cout << "Largest tier: striped-table registry resolves per-record counters at "
            << ebs::TablePrinter::Fmt(largest.wall_metrics_records_per_sec / 1e6, 2)
            << "M records/s, " << ebs::TablePrinter::Fmt(largest.wall_metrics_speedup, 2)
            << "x the pre-refactor global-mutex std::map layout (target: >= 2x).\n";
  if (largest.wall_metrics_speedup < 2.0) {
    std::cout << "WARNING: metric-resolution speedup below the 2x target on this machine.\n";
  }

  std::vector<WorkerRow> workers;
  for (const size_t n : {1u, 2u, 4u}) {
    workers.push_back(RunWorkers(n, 160, 180));
  }
  ebs::PrintBanner(std::cout, "Streaming engine: worker-count invariance (medium tier)");
  ebs::TablePrinter sweep({"workers", "records", "GiB", "run s", "fingerprint"});
  for (const WorkerRow& row : workers) {
    sweep.AddRow({std::to_string(row.workers), std::to_string(row.records),
                  ebs::TablePrinter::Fmt(row.total_gib, 3), ebs::TablePrinter::Fmt(row.wall_run_s, 2),
                  Hex(row.fingerprint)});
  }
  sweep.Print(std::cout);
  for (const WorkerRow& row : workers) {
    if (row.fingerprint != workers.front().fingerprint || row.records != workers.front().records) {
      std::cerr << "bench_scale: worker-count divergence: " << row.name << " differs from "
                << workers.front().name << "\n";
      return 1;
    }
  }
  std::cout << "Rollup fingerprints identical at 1/2/4 workers.\n";

  if (!WriteJson(tiers, workers, out_path)) {
    std::cout << "bench_scale: failed to write " << out_path << "\n";
    return 1;
  }
  std::cout << "bench_scale: wrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ebs::obs::InitRunReportFromEnv();
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_SCALE.json";
  const int rc = Run(out_path);
  ebs::obs::EmitRunReport(std::cout);
  return rc;
}
