// Fig 3(a)-(c) — throttle events and available resource.
//
//  (a) a real multi-VD VM case: a single VD pinned at its cap while the VM
//      aggregate stays far below the summed cap;
//  (b) the Resource Available Rate (RAR) distribution during throttling, for
//      multi-VD VMs and multi-VM nodes;
//  (c) the CDF of the throttled VD's write-to-read ratio, split by the
//      triggering resource (throughput vs IOPS).

#include <algorithm>
#include <iostream>

#include "src/core/simulation.h"
#include "src/obs/report.h"
#include "src/throttle/throttle.h"
#include "src/util/histogram.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using ebs::TablePrinter;

void Run() {
  ebs::EbsSimulation sim(ebs::DcPreset(1));
  const ebs::Fleet& fleet = sim.fleet();
  const auto& offered = sim.workload().offered_vd;

  ebs::ThrottleConfig config;

  const auto vm_groups = ebs::MultiVdVmGroups(fleet);
  const auto node_groups = ebs::MultiVmNodeGroups(fleet);
  const auto vm_analysis = ebs::AnalyzeThrottle(fleet, offered, vm_groups, config);
  const auto node_analysis = ebs::AnalyzeThrottle(fleet, offered, node_groups, config);

  // --- Fig 3(a): a single-VD throttle case -----------------------------------
  // Find the multi-VD VM with the most throttled seconds and show its worst
  // second: VD at cap vs VM far below aggregate cap.
  ebs::PrintBanner(std::cout, "Fig 3(a): single-VD throttle despite VM headroom");
  if (!vm_analysis.events.empty()) {
    const ebs::ThrottleEvent* best = &vm_analysis.events.front();
    for (const auto& event : vm_analysis.events) {
      if (event.rar > best->rar) {
        best = &event;
      }
    }
    const ebs::Vd& vd = fleet.vds[best->vd.value()];
    TablePrinter table({"Quantity", "Value"});
    table.AddRow({"Throttled VD", "vd-" + std::to_string(vd.id.value()) + " (" +
                                      fleet.spec_catalog[vd.spec_index].name + ")"});
    table.AddRow({"Trigger", best->trigger == ebs::ThrottleTrigger::kThroughput
                                 ? "throughput"
                                 : "IOPS"});
    table.AddRow({"Group RAR at the event", TablePrinter::FmtPercent(best->rar)});
    table.Print(std::cout);
  } else {
    std::cout << "(no throttle events at this cap scale)\n";
  }

  // --- Fig 3(b): RAR distributions -------------------------------------------
  ebs::PrintBanner(std::cout, "Fig 3(b): RAR during throttle (median / p90)");
  TablePrinter rar({"Group", "Resource", "RAR p50", "RAR p90", "events"});
  auto add_rar = [&rar](const std::string& group, const std::string& kind,
                        const std::vector<double>& samples) {
    rar.AddRow({group, kind, TablePrinter::FmtPercent(ebs::Percentile(samples, 50)),
                TablePrinter::FmtPercent(ebs::Percentile(samples, 90)),
                std::to_string(samples.size())});
  };
  add_rar("multi-VD VM", "throughput", vm_analysis.rar_throughput);
  add_rar("multi-VD VM", "IOPS", vm_analysis.rar_iops);
  add_rar("multi-VM node", "throughput", node_analysis.rar_throughput);
  add_rar("multi-VM node", "IOPS", node_analysis.rar_iops);
  rar.Print(std::cout);
  std::cout << "Paper: median RAR 61.6% (throughput) and 74.7% (IOPS) for multi-VD VMs — "
               "headroom is almost always abundant when a VD throttles.\n";

  // --- Fig 3(c): wr_ratio under throttle -------------------------------------
  ebs::PrintBanner(std::cout, "Fig 3(c): write-to-read ratio of throttled traffic");
  TablePrinter wr({"Trigger", "events", "share wr>1/3 (write-dom)", "share |wr|<=1/3 (mixed)",
                   "share wr<-1/3 (read-dom)"});
  auto add_wr = [&wr](const std::string& name, const std::vector<double>& samples) {
    if (samples.empty()) {
      wr.AddRow({name, "0", "-", "-", "-"});
      return;
    }
    size_t write_dom = 0;
    size_t mixed = 0;
    size_t read_dom = 0;
    for (const double v : samples) {
      if (v > 1.0 / 3.0) {
        ++write_dom;
      } else if (v < -1.0 / 3.0) {
        ++read_dom;
      } else {
        ++mixed;
      }
    }
    const double n = static_cast<double>(samples.size());
    wr.AddRow({name, std::to_string(samples.size()),
               TablePrinter::FmtPercent(static_cast<double>(write_dom) / n),
               TablePrinter::FmtPercent(static_cast<double>(mixed) / n),
               TablePrinter::FmtPercent(static_cast<double>(read_dom) / n)});
  };
  add_wr("throughput", vm_analysis.wr_ratio_throughput);
  add_wr("IOPS", vm_analysis.wr_ratio_iops);
  wr.Print(std::cout);

  const double ratio =
      vm_analysis.iops_events == 0
          ? 0.0
          : static_cast<double>(vm_analysis.throughput_events) /
                static_cast<double>(vm_analysis.iops_events);
  std::cout << "Throughput-triggered : IOPS-triggered = "
            << TablePrinter::Fmt(ratio, 1)
            << " (paper: 14.3x). Paper: only 11.7%/6.9% of events are mixed — throttle is "
               "driven by one op class, mostly writes.\n";
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
