// Table 4 — VM-level skewness and traffic share by application type.
//
// Expected shape: BigData has the largest traffic share but the mildest
// skewness; Docker/Database among the most skewed; skewness varies strongly
// across applications.

#include <iostream>

#include "src/analysis/skewness.h"
#include "src/core/simulation.h"
#include "src/obs/report.h"
#include "src/util/table.h"

namespace {

using ebs::TablePrinter;

void Run() {
  ebs::EbsSimulation sim(ebs::DcPreset(1));
  const auto rows = ebs::ComputeAppSkewness(sim.fleet(), sim.VmSeries());

  ebs::PrintBanner(std::cout, "Table 4: skewness by VM application type (read / write, %)");
  TablePrinter table({"App", "1%-CCR", "20%-CCR", "Traffic share"});
  for (const ebs::AppSkewness& row : rows) {
    table.AddRow({ebs::AppTypeName(row.app),
                  TablePrinter::FmtPair(row.ccr1[0] * 100.0, row.ccr1[1] * 100.0),
                  TablePrinter::FmtPair(row.ccr20[0] * 100.0, row.ccr20[1] * 100.0),
                  TablePrinter::FmtPair(row.traffic_share[0] * 100.0,
                                        row.traffic_share[1] * 100.0)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference: BigData share 37.4/39.6 with 1%-CCR 10.6/11.4 (least "
               "skewed); Docker 1%-CCR 60.0/40.7 (most skewed).\n";
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
