// Fig 7 — cache across the EBS stack (§7.3).
//
//  (a) per-VD hit ratio of FIFO / LRU / FrozenHot (and the 2Q/LFU/CLOCK
//      extensions) with the cache sized to the analysis block size;
//  (b)/(c) latency gain of CN-cache vs BS-cache for reads and writes at
//      p0/p50/p99;
//  (d) cache space utilization: spread of cacheable-VD counts across CNs vs
//      BSs.

#include <iostream>

#include "bench/qmodel_tail.h"
#include "src/cache/hotspot.h"
#include "src/cache/location.h"
#include "src/core/simulation.h"
#include "src/obs/report.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using ebs::CachePolicy;
using ebs::TablePrinter;

void Run() {
  ebs::EbsSimulation sim(ebs::DcPreset(1));
  const ebs::Fleet& fleet = sim.fleet();
  const ebs::TraceDataset& traces = sim.traces();
  const ebs::VdTraceIndex index(fleet, traces);
  const auto vds = index.ActiveVds(/*min_records=*/200);

  // --- Fig 7(a): hit ratio by policy and cache size ---------------------------
  ebs::PrintBanner(std::cout, "Fig 7(a): cache hit ratio (p50 / p10 across " +
                                  std::to_string(vds.size()) + " hot VDs)");
  TablePrinter hit_table({"Cache size", "FIFO", "LRU", "FrozenHot", "2Q", "LFU", "CLOCK"});
  for (const uint64_t block_mib : {64ULL, 512ULL, 2048ULL}) {
    std::vector<std::string> row = {std::to_string(block_mib) + " MiB"};
    for (const CachePolicy policy :
         {CachePolicy::kFifo, CachePolicy::kLru, CachePolicy::kFrozenHot, CachePolicy::kTwoQ,
          CachePolicy::kLfu, CachePolicy::kClock}) {
      std::vector<double> ratios;
      for (const ebs::VdId vd : vds) {
        const auto replay = ebs::ReplayVdCache(index.ForVd(vd),
                                               fleet.vds[vd.value()].capacity_bytes,
                                               block_mib * ebs::kMiB, policy);
        if (replay.page_accesses > 0) {
          ratios.push_back(replay.hit_ratio);
        }
      }
      row.push_back(TablePrinter::FmtPercent(ebs::Percentile(ratios, 50)) + " / " +
                    TablePrinter::FmtPercent(ebs::Percentile(ratios, 10)));
    }
    hit_table.AddRow(std::move(row));
  }
  hit_table.Print(std::cout);
  std::cout << "Paper shape: FrozenHot clearly below FIFO/LRU at 64 MiB, comparable at "
               "2048 MiB with a higher lower bound.\n";

  // --- Fig 7(b)-(d): cache location -------------------------------------------
  ebs::CacheLocationConfig location_config;
  const auto location = ebs::AnalyzeCacheLocation(fleet, traces, index, location_config);

  ebs::PrintBanner(std::cout, "Fig 7(b)/(c): latency gain (with/without cache; <100% is a "
                              "win)");
  TablePrinter gain_table({"Op", "Site", "p0", "p50", "p99"});
  for (const ebs::OpType op : {ebs::OpType::kRead, ebs::OpType::kWrite}) {
    for (const ebs::CacheSite site : {ebs::CacheSite::kComputeNode, ebs::CacheSite::kBlockServer}) {
      const ebs::LatencyGain& gain =
          location.gain[static_cast<int>(op)][static_cast<int>(site)];
      gain_table.AddRow({ebs::OpTypeName(op), ebs::CacheSiteName(site),
                         TablePrinter::FmtPercent(gain.p0), TablePrinter::FmtPercent(gain.p50),
                         TablePrinter::FmtPercent(gain.p99)});
    }
  }
  gain_table.Print(std::cout);
  std::cout << "Paper shape: CN-cache beats BS-cache at p0/p50 for writes; neither improves "
               "p99 (tail IOs miss the hot block); reads see little gain overall.\n";

  ebs::PrintBanner(std::cout, "Fig 7(d): cache space utilization (cacheable VDs per node)");
  TablePrinter util_table({"Site", "stddev of cacheable-VD count", "max per node"});
  util_table.AddRow({"CN-cache", TablePrinter::Fmt(location.cn_count_stddev, 2),
                     TablePrinter::Fmt(location.cn_cacheable_counts.empty()
                                           ? 0.0
                                           : *std::max_element(
                                                 location.cn_cacheable_counts.begin(),
                                                 location.cn_cacheable_counts.end()),
                                       0)});
  util_table.AddRow({"BS-cache", TablePrinter::Fmt(location.bs_count_stddev, 2),
                     TablePrinter::Fmt(location.bs_cacheable_counts.empty()
                                           ? 0.0
                                           : *std::max_element(
                                                 location.bs_cacheable_counts.begin(),
                                                 location.bs_cacheable_counts.end()),
                                       0)});
  util_table.Print(std::cout);
  std::cout << "Cacheable VDs: " << location.cacheable_vds
            << ". Paper: CN-cache stddev is up to 21x the BS-cache stddev at 2048 MiB — "
               "BS-cache provisions far more evenly.\n";

  // --- EBS_QMODEL: what a CN cache does to the latency tail -------------------
  if (ebs_bench::QmodelEnabled()) {
    // Replay an LRU CN-cache per hot VD and mark every IO served entirely
    // from cache; those short-circuit the storage path in the queue model.
    std::vector<uint8_t> cache_hits(traces.records.size(), 0);
    uint64_t hit_records = 0;
    for (const ebs::VdId vd : vds) {
      const auto vd_traces = index.ForVd(vd);
      std::vector<uint8_t> full_hits;
      ebs::ReplayVdCache(vd_traces, fleet.vds[vd.value()].capacity_bytes,
                         512ULL * ebs::kMiB, CachePolicy::kLru, &full_hits);
      for (size_t i = 0; i < vd_traces.size(); ++i) {
        if (full_hits[i] != 0) {
          const auto record_index =
              static_cast<size_t>(vd_traces[i] - traces.records.data());
          cache_hits[record_index] = 1;
          ++hit_records;
        }
      }
    }
    ebs::qmodel::QueueModelConfig qconfig;
    qconfig.enabled = true;
    const auto uncached = ebs::qmodel::RunOverTraces(fleet, qconfig, traces,
                                                     traces.window_seconds);
    const auto cached = ebs::qmodel::RunOverTraces(fleet, qconfig, traces,
                                                   traces.window_seconds, &cache_hits);
    ebs_bench::PrintTailDelta("Queueing tails: no cache vs 512 MiB CN LRU cache (EBS_QMODEL)",
                              "no cache", uncached, "CN cache", cached);
    std::cout << "IOs served from cache: " << hit_records << " of " << traces.records.size()
              << ". Hits skip the frontend hop and the BS queue entirely.\n";
  }
}

}  // namespace

int main() {
  ebs::obs::InitRunReportFromEnv();
  Run();
  ebs::obs::EmitRunReport(std::cout);
  return 0;
}
