// Shared EBS_QMODEL-gated tail-latency reporting for the figure benches.
//
// Every mitigation bench can replay its what-if through the discrete-event
// queueing backend (src/qmodel) and report what the intervention does to the
// latency tail. The section is opt-in via EBS_QMODEL=1 so the default bench
// output (and its runtime) stays exactly as before.

#ifndef BENCH_QMODEL_TAIL_H_
#define BENCH_QMODEL_TAIL_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/qmodel/queue_model.h"
#include "src/util/table.h"

namespace ebs_bench {

// True when the EBS_QMODEL environment variable asks for queueing-mode tails.
inline bool QmodelEnabled() {
  const char* env = std::getenv("EBS_QMODEL");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

inline std::string DeltaPercent(double base, double what_if) {
  if (base == 0.0) {
    return "n/a";
  }
  return ebs::TablePrinter::FmtPercent((what_if - base) / base);
}

// One row per tail statistic: baseline, what-if, relative delta. Negative
// deltas mean the intervention improved that statistic.
inline void PrintTailDelta(const std::string& banner, const std::string& base_label,
                           const ebs::qmodel::QueueModelResult& base,
                           const std::string& what_if_label,
                           const ebs::qmodel::QueueModelResult& what_if) {
  ebs::PrintBanner(std::cout, banner);
  ebs::TablePrinter table({"metric", base_label, what_if_label, "delta"});
  const auto row = [&table](const std::string& name, double b, double w, int digits) {
    table.AddRow({name, ebs::TablePrinter::Fmt(b, digits), ebs::TablePrinter::Fmt(w, digits),
                  DeltaPercent(b, w)});
  };
  row("P50 (us)", base.total_us.Percentile(0.50), what_if.total_us.Percentile(0.50), 0);
  row("P90 (us)", base.total_us.Percentile(0.90), what_if.total_us.Percentile(0.90), 0);
  row("P99 (us)", base.total_us.Percentile(0.99), what_if.total_us.Percentile(0.99), 0);
  row("P999 (us)", base.total_us.Percentile(0.999), what_if.total_us.Percentile(0.999), 0);
  row("mean (us)", base.total_us.Mean(), what_if.total_us.Mean(), 1);
  row("SLO violations", static_cast<double>(base.SloViolations()),
      static_cast<double>(what_if.SloViolations()), 0);
  row("queue overflows", static_cast<double>(base.wt_overflows + base.bs_overflows),
      static_cast<double>(what_if.wt_overflows + what_if.bs_overflows), 0);
  table.Print(std::cout);
}

}  // namespace ebs_bench

#endif  // BENCH_QMODEL_TAIL_H_
